"""Section 6 -- call modalities: participant count and viewing mode.

Reproduces Figure 15:

* **15a** -- C1's downlink utilization vs the number of participants in
  gallery mode,
* **15b** -- C1's uplink utilization vs the number of participants in
  gallery mode,
* **15c** -- C1's uplink utilization vs the number of participants when every
  other participant pins C1's video (speaker mode).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.analysis import aggregate_runs
from repro.core.profiles import PARTICIPANT_COUNTS
from repro.core.results import FigureSeries
from repro.media.layout import ViewMode
from repro.experiments.common import run_multiparty_call
from repro.experiments.static import DEFAULT_VCAS

__all__ = ["run_participant_sweep"]


def run_participant_sweep(
    mode: str = "gallery",
    vcas: Sequence[str] = DEFAULT_VCAS,
    participant_counts: Iterable[int] = PARTICIPANT_COUNTS,
    duration_s: float = 120.0,
    repetitions: int = 5,
    seed: int = 0,
) -> dict[str, dict[str, FigureSeries]]:
    """Figure 15: C1's network utilization vs the number of participants.

    Returns ``{"uplink": {vca: series}, "downlink": {vca: series}}``.  In
    ``speaker`` mode every other participant pins C1 (Figure 15c measures the
    pinned client's uplink).
    """
    if mode not in ("gallery", "speaker"):
        raise ValueError("mode must be 'gallery' or 'speaker'")
    view_mode = ViewMode.GALLERY if mode == "gallery" else ViewMode.SPEAKER
    pinned = "C1" if mode == "speaker" else None
    figure_up = "fig15b" if mode == "gallery" else "fig15c"
    uplink: dict[str, FigureSeries] = {
        vca: FigureSeries(figure_up, vca, "number of participants", "uplink bitrate (Mbps)")
        for vca in vcas
    }
    downlink: dict[str, FigureSeries] = {
        vca: FigureSeries("fig15a", vca, "number of participants", "downlink bitrate (Mbps)")
        for vca in vcas
    }
    for count in participant_counts:
        for vca in vcas:
            ups, downs = [], []
            for repetition in range(repetitions):
                run = run_multiparty_call(
                    vca,
                    n_participants=count,
                    mode=view_mode,
                    pinned=pinned,
                    duration_s=duration_s,
                    seed=seed + repetition,
                )
                ups.append(run.mean_upstream_mbps())
                downs.append(run.mean_downstream_mbps())
            up_summary = aggregate_runs(ups)
            down_summary = aggregate_runs(downs)
            uplink[vca].add_point(count, up_summary.mean, up_summary.ci_low, up_summary.ci_high)
            downlink[vca].add_point(count, down_summary.mean, down_summary.ci_low, down_summary.ci_high)
    return {"uplink": uplink, "downlink": downlink}
