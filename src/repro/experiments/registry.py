"""Experiment registry: table/figure id -> driver callable.

The registry is the single source of truth the benchmark harness, the
examples and ``EXPERIMENTS.md`` refer to.  Each entry maps the identifier
used in the paper (``table2``, ``fig1a`` ... ``fig15c``) to the driver that
regenerates it, together with a short description.

Every driver can be called with reduced parameters (shorter calls, fewer
repetitions, a coarser capacity grid) for quick runs; calling it with its
defaults reproduces the paper-scale campaign.
"""

from __future__ import annotations

import functools
import inspect
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.barometer import campaign as barometer
from repro.experiments import cascade, competition, disruption, modality, scenario, static

__all__ = [
    "ExperimentSpec",
    "EXPERIMENTS",
    "get_experiment",
    "list_experiments",
    "run_experiment",
]


@dataclass(frozen=True)
class ExperimentSpec:
    """One reproducible artefact of the paper."""

    experiment_id: str
    description: str
    section: str
    driver: Callable

    @property
    def supports_workers(self) -> bool:
        """Whether the driver can fan its grid out over a process pool."""
        return self._has_parameter("workers")

    @property
    def supports_store(self) -> bool:
        """Whether the driver can consult a content-addressed result store."""
        return self._has_parameter("store")

    @property
    def supports_fault_tolerance(self) -> bool:
        """Whether the driver forwards policy/journal/resume to the campaign."""
        return self._has_parameter("policy")

    @property
    def supports_hosts(self) -> bool:
        """Whether the driver can fan out over lease-coordinated hosts."""
        return self._has_parameter("hosts")

    def _has_parameter(self, name: str) -> bool:
        try:
            return name in inspect.signature(self.driver).parameters
        except (TypeError, ValueError):  # pragma: no cover - builtins only
            return False


EXPERIMENTS: dict[str, ExperimentSpec] = {
    spec.experiment_id: spec
    for spec in (
        ExperimentSpec(
            "table2",
            "Unconstrained upstream/downstream utilization per VCA",
            "3.1",
            static.run_unconstrained_utilization,
        ),
        ExperimentSpec(
            "fig1a",
            "Median bitrate vs uplink capacity",
            "3.1",
            functools.partial(static.run_capacity_sweep, direction="up"),
        ),
        ExperimentSpec(
            "fig1b",
            "Median bitrate vs downlink capacity",
            "3.1",
            functools.partial(static.run_capacity_sweep, direction="down"),
        ),
        ExperimentSpec(
            "fig1c",
            "Native vs browser clients under uplink shaping",
            "3.1",
            static.run_platform_comparison,
        ),
        ExperimentSpec(
            "fig2",
            "Encoding parameters (QP/FPS/width) vs capacity for Meet and Teams-Chrome",
            "3.2",
            static.run_encoding_parameters,
        ),
        ExperimentSpec(
            "fig3",
            "Freeze ratio vs downlink capacity and FIR count vs uplink capacity",
            "3.2",
            static.run_video_freezes,
        ),
        ExperimentSpec(
            "fig4a",
            "Upstream bitrate trace around a 30 s uplink disruption",
            "4.1",
            functools.partial(disruption.run_disruption_timeseries, direction="up"),
        ),
        ExperimentSpec(
            "fig4b",
            "Time to recovery vs uplink disruption severity",
            "4.1",
            functools.partial(disruption.run_ttr_sweep, direction="up"),
        ),
        ExperimentSpec(
            "fig5a",
            "Downstream bitrate trace around a 30 s downlink disruption",
            "4.2",
            functools.partial(disruption.run_disruption_timeseries, direction="down"),
        ),
        ExperimentSpec(
            "fig5b",
            "Time to recovery vs downlink disruption severity",
            "4.2",
            functools.partial(disruption.run_ttr_sweep, direction="down"),
        ),
        ExperimentSpec(
            "fig6",
            "Remote sender's upstream bitrate while the receiver's downlink is disrupted",
            "4.2",
            disruption.run_remote_sender_response,
        ),
        ExperimentSpec(
            "fig8",
            "Uplink share of incumbent VCA vs competing VCA at 0.5 Mbps",
            "5.1",
            functools.partial(competition.run_vca_vs_vca, direction="up"),
        ),
        ExperimentSpec(
            "fig9",
            "Self-competition traces (Zoom vs Zoom, Meet vs Meet) at 0.5 Mbps",
            "5.1",
            competition.run_self_competition_timeseries,
        ),
        ExperimentSpec(
            "fig10",
            "Downlink share of incumbent VCA vs competing VCA at 0.5 Mbps",
            "5.1",
            functools.partial(competition.run_vca_vs_vca, direction="down"),
        ),
        ExperimentSpec(
            "fig11",
            "Teams (incumbent) vs Zoom traces on a 1 Mbps link",
            "5.1",
            competition.run_pair_timeseries,
        ),
        ExperimentSpec(
            "fig12",
            "iPerf3 link share against each VCA on a 2 Mbps link",
            "5.2",
            competition.run_vca_vs_tcp,
        ),
        ExperimentSpec(
            "fig13",
            "Zoom probing bursts affecting a competing TCP download",
            "5.2",
            competition.run_zoom_burst_trace,
        ),
        ExperimentSpec(
            "fig14",
            "Zoom vs Netflix on a 0.5 Mbps downlink (+ Netflix TCP connection count)",
            "5.3",
            competition.run_vca_vs_streaming,
        ),
        ExperimentSpec(
            "fig15ab",
            "Uplink/downlink utilization vs participant count (gallery mode)",
            "6.1",
            functools.partial(modality.run_participant_sweep, mode="gallery"),
        ),
        ExperimentSpec(
            "scenario_sweep",
            "Netem scenario library sweep (trace-driven links, bursty loss, jitter, AQM)",
            "beyond-paper",
            scenario.run_scenario_sweep,
        ),
        ExperimentSpec(
            "cascade_sweep",
            "Cascaded SFU topology sweep (geo-distributed nodes, netem-profiled trunks)",
            "beyond-paper",
            cascade.run_cascade_sweep,
        ),
        ExperimentSpec(
            "barometer_sweep",
            "Population quality barometer (sampled households x VCAs x use cases)",
            "beyond-paper",
            barometer.run_barometer_sweep,
        ),
        ExperimentSpec(
            "fig15c",
            "Uplink utilization vs participant count when pinned (speaker mode)",
            "6.2",
            functools.partial(modality.run_participant_sweep, mode="speaker"),
        ),
    )
}


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Look up one experiment by its paper identifier."""
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known ids: {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[experiment_id]


def list_experiments() -> list[str]:
    """All known experiment identifiers, sorted."""
    return sorted(EXPERIMENTS)


def run_experiment(
    experiment_id: str,
    workers: Optional[int | str] = None,
    store: Optional[Any] = None,
    policy: Optional[Any] = None,
    journal: Optional[Any] = None,
    resume: bool = False,
    hosts: Optional[int] = None,
    **kwargs: Any,
):
    """Run one experiment by id, optionally over a supervised process pool.

    ``workers`` is forwarded to drivers whose grids support the parallel
    campaign runner (:attr:`ExperimentSpec.supports_workers`) and ``store``
    (a result-store directory or :class:`repro.results.ResultStore`) to
    drivers that can re-score unchanged grid cells from cache; ``policy``
    (a :class:`repro.core.campaign.CampaignPolicy`), ``journal`` and
    ``resume`` reach drivers that expose the campaign's fault-tolerance
    controls (:attr:`ExperimentSpec.supports_fault_tolerance`); ``hosts``
    reaches drivers that support the lease-coordinated multi-host fan-out
    (:attr:`ExperimentSpec.supports_hosts` -- requires ``store``).  For the
    remaining drivers a non-default value raises so a typo'd campaign
    doesn't silently run serially / uncached / unsupervised.
    """
    spec = get_experiment(experiment_id)
    if workers is not None:
        if not spec.supports_workers:
            raise ValueError(
                f"experiment {experiment_id!r} does not support parallel workers"
            )
        kwargs["workers"] = workers
    if hosts is not None:
        if not spec.supports_hosts:
            raise ValueError(
                f"experiment {experiment_id!r} does not support multi-host fan-out"
            )
        kwargs["hosts"] = hosts
    if store is not None:
        if not spec.supports_store:
            raise ValueError(
                f"experiment {experiment_id!r} does not support a result store"
            )
        kwargs["store"] = store
    if policy is not None or journal is not None or resume:
        if not spec.supports_fault_tolerance:
            raise ValueError(
                f"experiment {experiment_id!r} does not support campaign "
                "fault-tolerance controls (policy/journal/resume)"
            )
        if policy is not None:
            kwargs["policy"] = policy
        if journal is not None:
            kwargs["journal"] = journal
        if resume:
            kwargs["resume"] = resume
    return spec.driver(**kwargs)
