"""Section 5 -- competing applications on a shared bottleneck.

Reproduces:

* **Figures 8 and 10** -- uplink / downlink share when an incumbent VCA
  competes with another VCA call on a 0.5 Mbps symmetric link,
* **Figure 9** -- bitrate traces of two Zoom calls and two Meet calls
  competing with each other,
* **Figure 11** -- Teams (incumbent) vs Zoom traces on a 1 Mbps link,
* **Figure 12** -- the share an iPerf3 TCP flow obtains against each VCA on
  a 2 Mbps link (both directions),
* **Figure 13** -- Zoom's probing bursts hurting the competing TCP flow,
* **Figure 14** -- Zoom vs Netflix on a 0.5 Mbps downlink, including the
  number of TCP connections Netflix opens.

The table/figure drivers for Figures 8/10/12/14 (``run_vca_vs_vca``,
``run_vca_vs_tcp``, ``run_vca_vs_streaming``) are *deprecated adapters*
over the scenario API's ``workload`` axis: each call compiles a
:class:`~repro.netem.scenarios.ScenarioSpec` with the matching cross-traffic
component (see :func:`workload_scenario_spec`) and reconstructs the legacy
output shape from the :class:`~repro.netem.scenarios.ScenarioRun`.  New code
should build workload specs directly -- they compose with every netem
condition and cache through the result store.  ``run_competition`` and the
timeseries drivers (Figures 9/11/13) keep the original fixed two-server
topology; the calibration harness pins its fig8/10/12 metrics to it.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence

import numpy as np

from repro.apps.iperf import IperfFlow
from repro.apps.netflix import NetflixPlayer
from repro.apps.youtube import YouTubePlayer
from repro.core.analysis import aggregate_runs
from repro.core.capture import PacketCapture
from repro.core.metrics import link_share, tx_loss_rate
from repro.core.orchestrator import CallOrchestrator
from repro.core.profiles import static_profile
from repro.core.results import FigureSeries, TableResult
from repro.net.simulator import Simulator
from repro.net.topology import build_competition_topology
from repro.netem.scenarios import (
    CALL_START_S,
    WORKLOAD_CLIENT,
    ScenarioRun,
    ScenarioSpec,
    run_scenario,
)
from repro.vca.call import Call, CallConfig
from repro.experiments.static import DEFAULT_VCAS

__all__ = [
    "CompetitionRun",
    "run_competition",
    "run_vca_vs_vca",
    "run_self_competition_timeseries",
    "run_pair_timeseries",
    "run_vca_vs_tcp",
    "run_zoom_burst_trace",
    "run_vca_vs_streaming",
    "workload_scenario_spec",
]

#: Timeline constants from the paper: the incumbent call is established
#: first, the competing application starts ~30 s later and runs for two
#: minutes, and the incumbent continues for another minute afterwards.
INCUMBENT_START_S = 2.0
COMPETITOR_START_S = 32.0
COMPETITOR_DURATION_S = 120.0
TAIL_S = 60.0

#: Competitor kinds that are not VCA calls.
_APP_COMPETITORS = ("iperf-up", "iperf-down", "netflix", "youtube")


@dataclass
class CompetitionRun:
    """Result handle of one competition experiment."""

    sim: Simulator
    capture: PacketCapture
    incumbent_vca: str
    competitor: str
    capacity_mbps: float
    competitor_start_s: float
    competitor_end_s: float
    end_s: float
    netflix: Optional[NetflixPlayer] = None

    def _series(self, host: str, direction: str) -> tuple[np.ndarray, np.ndarray]:
        return self.capture.aggregate(host, direction).timeseries(0.0, self.end_s)

    def incumbent_series(self, direction: str = "tx") -> tuple[np.ndarray, np.ndarray]:
        """Per-second bitrate of the incumbent client C1 ('tx' or 'rx')."""
        return self._series("C1", direction)

    def competitor_series(self, direction: str = "tx") -> tuple[np.ndarray, np.ndarray]:
        """Per-second bitrate of the competing client F1 ('tx' or 'rx')."""
        return self._series("F1", direction)

    def share(self, direction: str = "up") -> float:
        """Incumbent's share of the bottleneck during the competition window."""
        tx_rx = "tx" if direction == "up" else "rx"
        window = (self.competitor_start_s + 10.0, self.competitor_end_s)
        incumbent = self.capture.aggregate("C1", tx_rx).mean_mbps(*window)
        competitor = self.capture.aggregate("F1", tx_rx).mean_mbps(*window)
        return link_share(np.array([incumbent]), np.array([competitor]))

    def downlink_tx_loss(self, client: str, call_id: str) -> float:
        """Tx-side loss of the relay's forwarded media toward ``client``.

        Compares the media bytes the call's server actually transmitted for
        ``client`` against the bytes that arrived, over the competition
        window (requires ``capture_servers=True``).  This is the metric that
        makes the SVC relay's "flood through sustained loss" behaviour
        visible: the rx-side share can look paper-faithful while most of
        what the server sends dies at the bottleneck.
        """
        server = "S1" if call_id == "incumbent" else "S2"
        # Same 10 s competition lead-in as share(), but capped so reduced
        # runs (competitor window <= 10 s) keep a non-empty window.
        duration = self.competitor_end_s - self.competitor_start_s
        lead_in = min(10.0, duration / 3.0)
        window = (self.competitor_start_s + lead_in, self.competitor_end_s)
        prefix = f"{call_id}:down:"
        suffix = f">{client}"
        sent = sum(
            series.total_bytes(*window)
            for series in self.capture.flows_at(server, "tx")
            if series.flow_id.startswith(prefix) and series.flow_id.endswith(suffix)
        )
        received = sum(
            series.total_bytes(*window)
            for series in self.capture.flows_at(client, "rx")
            if series.flow_id.startswith(prefix) and series.flow_id.endswith(suffix)
        )
        return tx_loss_rate(sent, received)


def run_competition(
    incumbent_vca: str,
    competitor: str,
    capacity_mbps: float,
    competitor_duration_s: float = COMPETITOR_DURATION_S,
    seed: int = 0,
    capture_servers: bool = False,
) -> CompetitionRun:
    """Run one incumbent-vs-competitor experiment on a shared bottleneck.

    ``competitor`` is either a VCA name (a second call is established through
    a separate media server) or one of ``iperf-up``, ``iperf-down``,
    ``netflix``, ``youtube``.  ``capture_servers`` additionally taps the
    S1/S2 server hosts so tx-side metrics (what the relay *sent* vs what the
    client received, :func:`repro.core.metrics.tx_loss_rate`) can be
    computed; taps are passive and do not perturb the run.
    """
    sim = Simulator(seed=seed)
    topo = build_competition_topology(sim)
    profile = static_profile(capacity_mbps)
    topo.shape(up_profile=profile, down_profile=static_profile(capacity_mbps))

    capture = PacketCapture(sim)
    capture.attach(topo.host("C1"))
    capture.attach(topo.host("F1"))
    if capture_servers:
        capture.attach(topo.host("S1"))
        capture.attach(topo.host("S2"))

    orchestrator = CallOrchestrator(sim)
    incumbent = Call(
        sim,
        [topo.host("C1"), topo.host("C2")],
        topo.host("S1"),
        CallConfig(vca=incumbent_vca, call_id="incumbent", seed=seed, collect_stats=False),
    )
    competitor_end_s = COMPETITOR_START_S + competitor_duration_s
    end_s = competitor_end_s + TAIL_S
    orchestrator.run_call(incumbent, start=INCUMBENT_START_S, duration=end_s - INCUMBENT_START_S)

    netflix_player: Optional[NetflixPlayer] = None
    if competitor in _APP_COMPETITORS:
        if competitor.startswith("iperf"):
            direction = "up" if competitor.endswith("up") else "down"
            app = IperfFlow(sim, client=topo.host("F1"), server=topo.host("S2"), direction=direction)
        elif competitor == "netflix":
            app = NetflixPlayer(sim, client=topo.host("F1"), server=topo.host("S2"))
            netflix_player = app
        else:
            app = YouTubePlayer(sim, client=topo.host("F1"), server=topo.host("S2"))
        orchestrator.run_competitor(app, start=COMPETITOR_START_S, duration=competitor_duration_s)
    else:
        competing_call = Call(
            sim,
            [topo.host("F1"), topo.host("F2")],
            topo.host("S2"),
            CallConfig(vca=competitor, call_id="competitor", seed=seed + 500, collect_stats=False),
        )
        orchestrator.run_call(competing_call, start=COMPETITOR_START_S, duration=competitor_duration_s)

    sim.run(until=end_s + 2.0)
    return CompetitionRun(
        sim=sim,
        capture=capture,
        incumbent_vca=incumbent_vca,
        competitor=competitor,
        capacity_mbps=capacity_mbps,
        competitor_start_s=COMPETITOR_START_S,
        competitor_end_s=competitor_end_s,
        end_s=end_s,
        netflix=netflix_player,
    )


def workload_scenario_spec(
    incumbent_vca: str,
    workload_kind: str,
    workload_params: Mapping[str, Any],
    capacity_mbps: float,
    competitor_duration_s: float = COMPETITOR_DURATION_S,
) -> ScenarioSpec:
    """The ScenarioSpec equivalent of one legacy competition experiment.

    Reproduces the paper's Section 5 timeline on the scenario API: both
    directions of the access link shaped to ``capacity_mbps``, the workload
    starting ``COMPETITOR_START_S - CALL_START_S`` seconds after the measured
    call joins and running for ``competitor_duration_s``, then a
    :data:`TAIL_S` cool-down with the incumbent alone.  This is the spec the
    deprecated ``run_vca_vs_*`` adapters run; migrating callers should build
    it (or their own variant) and use
    :func:`repro.netem.scenarios.run_scenario` directly.
    """
    params = dict(workload_params)
    params["start_offset_s"] = COMPETITOR_START_S - CALL_START_S
    params["duration_s"] = float(competitor_duration_s)
    label = params.get("app", params.get("direction", workload_kind))
    return ScenarioSpec(
        name=f"adapter/{incumbent_vca}-vs-{workload_kind}-{label}",
        description=(
            f"Legacy competition adapter: {incumbent_vca} vs {workload_kind} "
            f"({label}) on a {capacity_mbps} Mbps symmetric link"
        ),
        vca=incumbent_vca,
        direction="both",
        profile=("constant", {"mbps": float(capacity_mbps)}),
        workload=(workload_kind, params),
        duration_s=(COMPETITOR_START_S - CALL_START_S) + float(competitor_duration_s) + TAIL_S,
    )


def _warn_deprecated(name: str) -> None:
    warnings.warn(
        f"{name} is a deprecated adapter over the scenario workload axis; "
        "build a ScenarioSpec with workload=(kind, params) (see "
        "workload_scenario_spec) and run_scenario instead",
        DeprecationWarning,
        stacklevel=3,
    )


def _run_workload(
    incumbent_vca: str,
    workload_kind: str,
    workload_params: Mapping[str, Any],
    capacity_mbps: float,
    competitor_duration_s: float,
    seed: int,
) -> ScenarioRun:
    spec = workload_scenario_spec(
        incumbent_vca, workload_kind, workload_params, capacity_mbps, competitor_duration_s
    )
    # collect_stats=False mirrors the legacy harness's incumbent CallConfig;
    # the adapters only read packet captures, never per-second stats.
    return run_scenario(spec, seed=seed, collect_stats=False)


def run_vca_vs_vca(
    direction: str = "up",
    capacity_mbps: float = 0.5,
    incumbents: Sequence[str] = DEFAULT_VCAS,
    competitors: Sequence[str] = DEFAULT_VCAS,
    repetitions: int = 3,
    competitor_duration_s: float = COMPETITOR_DURATION_S,
    seed: int = 0,
) -> TableResult:
    """Figures 8 / 10: link share of each incumbent against each competitor.

    .. deprecated:: adapter over the scenario workload axis (see module docs).
       Shares match the workload-scenario path exactly; for
       ``competitor_duration_s`` below 30 s the competition window's lead-in
       is ``min(10 s, duration / 3)`` instead of the legacy flat 10 s.
    """
    _warn_deprecated("run_vca_vs_vca")
    figure_id = "fig8" if direction == "up" else "fig10"
    table = TableResult(
        table_id=figure_id,
        title=f"{figure_id}: incumbent share of the {direction}link at {capacity_mbps} Mbps",
        columns=("incumbent", "competitor", "incumbent_share", "share_ci_low", "share_ci_high"),
    )
    for incumbent in incumbents:
        for competitor in competitors:
            shares = []
            for repetition in range(repetitions):
                run = _run_workload(
                    incumbent,
                    "vca",
                    {"app": competitor},
                    capacity_mbps,
                    competitor_duration_s,
                    seed + repetition,
                )
                shares.append(run.share(direction))
            summary = aggregate_runs(shares)
            table.add_row(incumbent, competitor, summary.mean, summary.ci_low, summary.ci_high)
    return table


def run_self_competition_timeseries(
    vcas: Sequence[str] = ("zoom", "meet"),
    capacity_mbps: float = 0.5,
    competitor_duration_s: float = COMPETITOR_DURATION_S,
    seed: int = 0,
) -> dict[str, dict[str, FigureSeries]]:
    """Figure 9: upstream traces of two same-VCA calls sharing a 0.5 Mbps link."""
    out: dict[str, dict[str, FigureSeries]] = {}
    for vca in vcas:
        run = run_competition(vca, vca, capacity_mbps, competitor_duration_s, seed=seed)
        series = {}
        for label, host_direction in (("incumbent", "tx"), ("competitor", "tx")):
            data = run.incumbent_series("tx") if label == "incumbent" else run.competitor_series("tx")
            figure = FigureSeries("fig9", f"{vca}-{label}", "time (s)", "upstream bitrate (Mbps)")
            for t, value in zip(*data):
                figure.add_point(float(t), float(value))
            series[label] = figure
        out[vca] = series
    return out


def run_pair_timeseries(
    incumbent: str = "teams",
    competitor: str = "zoom",
    capacity_mbps: float = 1.0,
    competitor_duration_s: float = COMPETITOR_DURATION_S,
    seed: int = 0,
) -> dict[str, dict[str, FigureSeries]]:
    """Figure 11: Teams (incumbent) vs Zoom traces in both directions."""
    run = run_competition(incumbent, competitor, capacity_mbps, competitor_duration_s, seed=seed)
    out: dict[str, dict[str, FigureSeries]] = {}
    for direction, tx_rx in (("up", "tx"), ("down", "rx")):
        series = {}
        for label in ("incumbent", "competitor"):
            data = run.incumbent_series(tx_rx) if label == "incumbent" else run.competitor_series(tx_rx)
            name = incumbent if label == "incumbent" else competitor
            figure = FigureSeries("fig11", f"{name}-{direction}", "time (s)", f"{direction}stream bitrate (Mbps)")
            for t, value in zip(*data):
                figure.add_point(float(t), float(value))
            series[label] = figure
        out[direction] = series
    return out


def run_vca_vs_tcp(
    capacity_mbps: float = 2.0,
    vcas: Sequence[str] = DEFAULT_VCAS,
    repetitions: int = 3,
    competitor_duration_s: float = COMPETITOR_DURATION_S,
    seed: int = 0,
) -> TableResult:
    """Figure 12: the share iPerf3 obtains against each incumbent VCA.

    .. deprecated:: adapter over the scenario workload axis (see module docs
       and :func:`run_vca_vs_vca` for the window tolerance).
    """
    _warn_deprecated("run_vca_vs_tcp")
    table = TableResult(
        table_id="fig12",
        title=f"fig12: iPerf3 share of a {capacity_mbps} Mbps link vs incumbent VCAs",
        columns=("incumbent", "direction", "iperf_share", "vca_share", "ci_low", "ci_high"),
    )
    for vca in vcas:
        for direction in ("up", "down"):
            shares = []
            for repetition in range(repetitions):
                run = _run_workload(
                    vca,
                    "tcp_bulk",
                    {"flows": 1, "direction": direction},
                    capacity_mbps,
                    competitor_duration_s,
                    seed + repetition,
                )
                shares.append(run.share(direction))
            summary = aggregate_runs(shares)
            table.add_row(vca, direction, 1.0 - summary.mean, summary.mean, summary.ci_low, summary.ci_high)
    return table


def run_zoom_burst_trace(
    capacity_mbps: float = 2.0,
    competitor_duration_s: float = COMPETITOR_DURATION_S,
    seed: int = 0,
) -> dict[str, FigureSeries]:
    """Figure 13: downstream traces of Zoom and a competing iPerf3 download."""
    run = run_competition("zoom", "iperf-down", capacity_mbps, competitor_duration_s, seed=seed)
    out = {}
    for label, data in (("zoom", run.incumbent_series("rx")), ("iperf3", run.competitor_series("rx"))):
        figure = FigureSeries("fig13", label, "time (s)", "downstream bitrate (Mbps)")
        for t, value in zip(*data):
            figure.add_point(float(t), float(value))
        out[label] = figure
    return out


def run_vca_vs_streaming(
    vca: str = "zoom",
    app: str = "netflix",
    capacity_mbps: float = 0.5,
    competitor_duration_s: float = COMPETITOR_DURATION_S,
    seed: int = 0,
) -> dict[str, FigureSeries]:
    """Figure 14: a VCA vs a streaming application on a constrained downlink.

    Returns the two downstream traces plus (for Netflix) the number of TCP
    connections open per chunk over time.

    .. deprecated:: adapter over the scenario workload axis (see module docs).
    """
    _warn_deprecated("run_vca_vs_streaming")
    run = _run_workload(
        vca, "streaming", {"app": app}, capacity_mbps, competitor_duration_s, seed
    )
    out = {}
    for label, host in ((vca, "C1"), (app, WORKLOAD_CLIENT)):
        data = run.capture.aggregate(host, "rx").timeseries(0.0, run.end_s)
        figure = FigureSeries("fig14a", label, "time (s)", "downstream bitrate (Mbps)")
        for t, value in zip(*data):
            figure.add_point(float(t), float(value))
        out[label] = figure
    player = run.workload_apps[0] if run.workload_apps else None
    if isinstance(player, NetflixPlayer):
        connections = FigureSeries("fig14b", "tcp-connections", "time (s)", "parallel TCP connections")
        for t, count in player.connection_log:
            connections.add_point(float(t), float(count))
        connections_total = FigureSeries("fig14b-total", "connections-opened", "time (s)", "count")
        connections_total.add_point(run.workload_end_s, float(player.connections_opened))
        out["tcp_connections"] = connections
        out["tcp_connections_total"] = connections_total
    return out
