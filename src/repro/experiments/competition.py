"""Section 5 -- competing applications on a shared bottleneck.

Reproduces:

* **Figures 8 and 10** -- uplink / downlink share when an incumbent VCA
  competes with another VCA call on a 0.5 Mbps symmetric link,
* **Figure 9** -- bitrate traces of two Zoom calls and two Meet calls
  competing with each other,
* **Figure 11** -- Teams (incumbent) vs Zoom traces on a 1 Mbps link,
* **Figure 12** -- the share an iPerf3 TCP flow obtains against each VCA on
  a 2 Mbps link (both directions),
* **Figure 13** -- Zoom's probing bursts hurting the competing TCP flow,
* **Figure 14** -- Zoom vs Netflix on a 0.5 Mbps downlink, including the
  number of TCP connections Netflix opens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.apps.iperf import IperfFlow
from repro.apps.netflix import NetflixPlayer
from repro.apps.youtube import YouTubePlayer
from repro.core.analysis import aggregate_runs
from repro.core.capture import PacketCapture
from repro.core.metrics import link_share, tx_loss_rate
from repro.core.orchestrator import CallOrchestrator
from repro.core.profiles import static_profile
from repro.core.results import FigureSeries, TableResult
from repro.net.simulator import Simulator
from repro.net.topology import build_competition_topology
from repro.vca.call import Call, CallConfig
from repro.experiments.static import DEFAULT_VCAS

__all__ = [
    "CompetitionRun",
    "run_competition",
    "run_vca_vs_vca",
    "run_self_competition_timeseries",
    "run_pair_timeseries",
    "run_vca_vs_tcp",
    "run_zoom_burst_trace",
    "run_vca_vs_streaming",
]

#: Timeline constants from the paper: the incumbent call is established
#: first, the competing application starts ~30 s later and runs for two
#: minutes, and the incumbent continues for another minute afterwards.
INCUMBENT_START_S = 2.0
COMPETITOR_START_S = 32.0
COMPETITOR_DURATION_S = 120.0
TAIL_S = 60.0

#: Competitor kinds that are not VCA calls.
_APP_COMPETITORS = ("iperf-up", "iperf-down", "netflix", "youtube")


@dataclass
class CompetitionRun:
    """Result handle of one competition experiment."""

    sim: Simulator
    capture: PacketCapture
    incumbent_vca: str
    competitor: str
    capacity_mbps: float
    competitor_start_s: float
    competitor_end_s: float
    end_s: float
    netflix: Optional[NetflixPlayer] = None

    def _series(self, host: str, direction: str) -> tuple[np.ndarray, np.ndarray]:
        return self.capture.aggregate(host, direction).timeseries(0.0, self.end_s)

    def incumbent_series(self, direction: str = "tx") -> tuple[np.ndarray, np.ndarray]:
        """Per-second bitrate of the incumbent client C1 ('tx' or 'rx')."""
        return self._series("C1", direction)

    def competitor_series(self, direction: str = "tx") -> tuple[np.ndarray, np.ndarray]:
        """Per-second bitrate of the competing client F1 ('tx' or 'rx')."""
        return self._series("F1", direction)

    def share(self, direction: str = "up") -> float:
        """Incumbent's share of the bottleneck during the competition window."""
        tx_rx = "tx" if direction == "up" else "rx"
        window = (self.competitor_start_s + 10.0, self.competitor_end_s)
        incumbent = self.capture.aggregate("C1", tx_rx).mean_mbps(*window)
        competitor = self.capture.aggregate("F1", tx_rx).mean_mbps(*window)
        return link_share(np.array([incumbent]), np.array([competitor]))

    def downlink_tx_loss(self, client: str, call_id: str) -> float:
        """Tx-side loss of the relay's forwarded media toward ``client``.

        Compares the media bytes the call's server actually transmitted for
        ``client`` against the bytes that arrived, over the competition
        window (requires ``capture_servers=True``).  This is the metric that
        makes the SVC relay's "flood through sustained loss" behaviour
        visible: the rx-side share can look paper-faithful while most of
        what the server sends dies at the bottleneck.
        """
        server = "S1" if call_id == "incumbent" else "S2"
        # Same 10 s competition lead-in as share(), but capped so reduced
        # runs (competitor window <= 10 s) keep a non-empty window.
        duration = self.competitor_end_s - self.competitor_start_s
        lead_in = min(10.0, duration / 3.0)
        window = (self.competitor_start_s + lead_in, self.competitor_end_s)
        prefix = f"{call_id}:down:"
        suffix = f">{client}"
        sent = sum(
            series.total_bytes(*window)
            for series in self.capture.flows_at(server, "tx")
            if series.flow_id.startswith(prefix) and series.flow_id.endswith(suffix)
        )
        received = sum(
            series.total_bytes(*window)
            for series in self.capture.flows_at(client, "rx")
            if series.flow_id.startswith(prefix) and series.flow_id.endswith(suffix)
        )
        return tx_loss_rate(sent, received)


def run_competition(
    incumbent_vca: str,
    competitor: str,
    capacity_mbps: float,
    competitor_duration_s: float = COMPETITOR_DURATION_S,
    seed: int = 0,
    capture_servers: bool = False,
) -> CompetitionRun:
    """Run one incumbent-vs-competitor experiment on a shared bottleneck.

    ``competitor`` is either a VCA name (a second call is established through
    a separate media server) or one of ``iperf-up``, ``iperf-down``,
    ``netflix``, ``youtube``.  ``capture_servers`` additionally taps the
    S1/S2 server hosts so tx-side metrics (what the relay *sent* vs what the
    client received, :func:`repro.core.metrics.tx_loss_rate`) can be
    computed; taps are passive and do not perturb the run.
    """
    sim = Simulator(seed=seed)
    topo = build_competition_topology(sim)
    profile = static_profile(capacity_mbps)
    topo.shape(up_profile=profile, down_profile=static_profile(capacity_mbps))

    capture = PacketCapture(sim)
    capture.attach(topo.host("C1"))
    capture.attach(topo.host("F1"))
    if capture_servers:
        capture.attach(topo.host("S1"))
        capture.attach(topo.host("S2"))

    orchestrator = CallOrchestrator(sim)
    incumbent = Call(
        sim,
        [topo.host("C1"), topo.host("C2")],
        topo.host("S1"),
        CallConfig(vca=incumbent_vca, call_id="incumbent", seed=seed, collect_stats=False),
    )
    competitor_end_s = COMPETITOR_START_S + competitor_duration_s
    end_s = competitor_end_s + TAIL_S
    orchestrator.run_call(incumbent, start=INCUMBENT_START_S, duration=end_s - INCUMBENT_START_S)

    netflix_player: Optional[NetflixPlayer] = None
    if competitor in _APP_COMPETITORS:
        if competitor.startswith("iperf"):
            direction = "up" if competitor.endswith("up") else "down"
            app = IperfFlow(sim, client=topo.host("F1"), server=topo.host("S2"), direction=direction)
        elif competitor == "netflix":
            app = NetflixPlayer(sim, client=topo.host("F1"), server=topo.host("S2"))
            netflix_player = app
        else:
            app = YouTubePlayer(sim, client=topo.host("F1"), server=topo.host("S2"))
        orchestrator.run_competitor(app, start=COMPETITOR_START_S, duration=competitor_duration_s)
    else:
        competing_call = Call(
            sim,
            [topo.host("F1"), topo.host("F2")],
            topo.host("S2"),
            CallConfig(vca=competitor, call_id="competitor", seed=seed + 500, collect_stats=False),
        )
        orchestrator.run_call(competing_call, start=COMPETITOR_START_S, duration=competitor_duration_s)

    sim.run(until=end_s + 2.0)
    return CompetitionRun(
        sim=sim,
        capture=capture,
        incumbent_vca=incumbent_vca,
        competitor=competitor,
        capacity_mbps=capacity_mbps,
        competitor_start_s=COMPETITOR_START_S,
        competitor_end_s=competitor_end_s,
        end_s=end_s,
        netflix=netflix_player,
    )


def run_vca_vs_vca(
    direction: str = "up",
    capacity_mbps: float = 0.5,
    incumbents: Sequence[str] = DEFAULT_VCAS,
    competitors: Sequence[str] = DEFAULT_VCAS,
    repetitions: int = 3,
    competitor_duration_s: float = COMPETITOR_DURATION_S,
    seed: int = 0,
) -> TableResult:
    """Figures 8 / 10: link share of each incumbent against each competitor."""
    figure_id = "fig8" if direction == "up" else "fig10"
    table = TableResult(
        table_id=figure_id,
        title=f"{figure_id}: incumbent share of the {direction}link at {capacity_mbps} Mbps",
        columns=("incumbent", "competitor", "incumbent_share", "share_ci_low", "share_ci_high"),
    )
    for incumbent in incumbents:
        for competitor in competitors:
            shares = []
            for repetition in range(repetitions):
                run = run_competition(
                    incumbent,
                    competitor,
                    capacity_mbps,
                    competitor_duration_s=competitor_duration_s,
                    seed=seed + repetition,
                )
                shares.append(run.share(direction))
            summary = aggregate_runs(shares)
            table.add_row(incumbent, competitor, summary.mean, summary.ci_low, summary.ci_high)
    return table


def run_self_competition_timeseries(
    vcas: Sequence[str] = ("zoom", "meet"),
    capacity_mbps: float = 0.5,
    competitor_duration_s: float = COMPETITOR_DURATION_S,
    seed: int = 0,
) -> dict[str, dict[str, FigureSeries]]:
    """Figure 9: upstream traces of two same-VCA calls sharing a 0.5 Mbps link."""
    out: dict[str, dict[str, FigureSeries]] = {}
    for vca in vcas:
        run = run_competition(vca, vca, capacity_mbps, competitor_duration_s, seed=seed)
        series = {}
        for label, host_direction in (("incumbent", "tx"), ("competitor", "tx")):
            data = run.incumbent_series("tx") if label == "incumbent" else run.competitor_series("tx")
            figure = FigureSeries("fig9", f"{vca}-{label}", "time (s)", "upstream bitrate (Mbps)")
            for t, value in zip(*data):
                figure.add_point(float(t), float(value))
            series[label] = figure
        out[vca] = series
    return out


def run_pair_timeseries(
    incumbent: str = "teams",
    competitor: str = "zoom",
    capacity_mbps: float = 1.0,
    competitor_duration_s: float = COMPETITOR_DURATION_S,
    seed: int = 0,
) -> dict[str, dict[str, FigureSeries]]:
    """Figure 11: Teams (incumbent) vs Zoom traces in both directions."""
    run = run_competition(incumbent, competitor, capacity_mbps, competitor_duration_s, seed=seed)
    out: dict[str, dict[str, FigureSeries]] = {}
    for direction, tx_rx in (("up", "tx"), ("down", "rx")):
        series = {}
        for label in ("incumbent", "competitor"):
            data = run.incumbent_series(tx_rx) if label == "incumbent" else run.competitor_series(tx_rx)
            name = incumbent if label == "incumbent" else competitor
            figure = FigureSeries("fig11", f"{name}-{direction}", "time (s)", f"{direction}stream bitrate (Mbps)")
            for t, value in zip(*data):
                figure.add_point(float(t), float(value))
            series[label] = figure
        out[direction] = series
    return out


def run_vca_vs_tcp(
    capacity_mbps: float = 2.0,
    vcas: Sequence[str] = DEFAULT_VCAS,
    repetitions: int = 3,
    competitor_duration_s: float = COMPETITOR_DURATION_S,
    seed: int = 0,
) -> TableResult:
    """Figure 12: the share iPerf3 obtains against each incumbent VCA."""
    table = TableResult(
        table_id="fig12",
        title=f"fig12: iPerf3 share of a {capacity_mbps} Mbps link vs incumbent VCAs",
        columns=("incumbent", "direction", "iperf_share", "vca_share", "ci_low", "ci_high"),
    )
    for vca in vcas:
        for direction in ("up", "down"):
            shares = []
            for repetition in range(repetitions):
                run = run_competition(
                    vca,
                    f"iperf-{direction}",
                    capacity_mbps,
                    competitor_duration_s=competitor_duration_s,
                    seed=seed + repetition,
                )
                shares.append(run.share(direction))
            summary = aggregate_runs(shares)
            table.add_row(vca, direction, 1.0 - summary.mean, summary.mean, summary.ci_low, summary.ci_high)
    return table


def run_zoom_burst_trace(
    capacity_mbps: float = 2.0,
    competitor_duration_s: float = COMPETITOR_DURATION_S,
    seed: int = 0,
) -> dict[str, FigureSeries]:
    """Figure 13: downstream traces of Zoom and a competing iPerf3 download."""
    run = run_competition("zoom", "iperf-down", capacity_mbps, competitor_duration_s, seed=seed)
    out = {}
    for label, data in (("zoom", run.incumbent_series("rx")), ("iperf3", run.competitor_series("rx"))):
        figure = FigureSeries("fig13", label, "time (s)", "downstream bitrate (Mbps)")
        for t, value in zip(*data):
            figure.add_point(float(t), float(value))
        out[label] = figure
    return out


def run_vca_vs_streaming(
    vca: str = "zoom",
    app: str = "netflix",
    capacity_mbps: float = 0.5,
    competitor_duration_s: float = COMPETITOR_DURATION_S,
    seed: int = 0,
) -> dict[str, FigureSeries]:
    """Figure 14: a VCA vs a streaming application on a constrained downlink.

    Returns the two downstream traces plus (for Netflix) the number of TCP
    connections open per chunk over time.
    """
    run = run_competition(vca, app, capacity_mbps, competitor_duration_s, seed=seed)
    out = {}
    for label, data in ((vca, run.incumbent_series("rx")), (app, run.competitor_series("rx"))):
        figure = FigureSeries("fig14a", label, "time (s)", "downstream bitrate (Mbps)")
        for t, value in zip(*data):
            figure.add_point(float(t), float(value))
        out[label] = figure
    if run.netflix is not None:
        connections = FigureSeries("fig14b", "tcp-connections", "time (s)", "parallel TCP connections")
        for t, count in run.netflix.connection_log:
            connections.add_point(float(t), float(count))
        connections_total = FigureSeries("fig14b-total", "connections-opened", "time (s)", "count")
        connections_total.add_point(run.competitor_end_s, float(run.netflix.connections_opened))
        out["tcp_connections"] = connections
        out["tcp_connections_total"] = connections_total
    return out
