"""Cascaded-SFU topology sweeps (beyond-paper, cascade pack).

``run_cascade_sweep`` is the campaign driver behind the ``cascade_sweep``
experiment id: it fans the ``cascade``-tagged scenarios of the netem
registry over :func:`repro.core.campaign.run_campaign` and tabulates, next
to the scenario library's core metrics, the cascade-specific ones -- the
per-region freeze ratios, the near/far freeze gap and the trunk utilisation
and loss aggregates that single-server scenarios cannot express.

Like ``scenario_sweep`` the grid is incremental with ``store=``: every
``(scenario, repetition)`` cell is content-addressed by the resolved spec
payload, so editing one cascade cell re-simulates exactly that cell.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Sequence, Union

if TYPE_CHECKING:
    from repro.core.journal import CampaignJournal
    from repro.results.store import ResultStore

from repro.core.campaign import CampaignPolicy, run_campaign
from repro.core.results import TableResult
from repro.experiments.scenario import scenario_conditions
from repro.netem.scenarios import get_scenario, list_scenarios

__all__ = ["run_cascade_sweep", "CASCADE_CORE_METRICS"]

#: Scalar metrics reported per cascade scenario (mean over repetitions).
CASCADE_CORE_METRICS = (
    "median_up_mbps",
    "median_down_mbps",
    "freeze_ratio",
    "cascade_freeze_gap",
    "trunk_mean_mbps",
    "trunk_tx_loss_rate",
)


def run_cascade_sweep(
    scenarios: Optional[Sequence[str]] = None,
    duration_s: Optional[float] = None,
    repetitions: int = 2,
    seed: int = 0,
    workers: Optional[int | str] = None,
    store: Union["ResultStore", str, Path, None] = None,
    use_cache: bool = True,
    policy: Optional[CampaignPolicy] = None,
    journal: Union["CampaignJournal", str, Path, None] = None,
    resume: bool = False,
    progress: Union[bool, None] = None,
    hosts: Optional[int] = None,
) -> TableResult:
    """Run the cascade scenario pack and tabulate per-region metrics.

    ``scenarios`` selects cascade scenarios by name; by default every
    scenario tagged ``cascade`` runs.  Scenarios without a cascade axis are
    rejected -- their metric payloads carry no per-region columns.  The
    per-region freeze columns span the widest selected cascade; narrower
    cascades report ``nan`` for regions they do not have.
    """
    if scenarios is not None:
        specs = [get_scenario(name) for name in scenarios]
    else:
        specs = list_scenarios(tag="cascade")
    if not specs:
        raise ValueError("no cascade scenarios selected")
    for spec in specs:
        if spec.cascade is None:
            raise ValueError(
                f"scenario {spec.name!r} has no cascade axis; use scenario_sweep"
            )
    max_regions = max(int(spec.cascade[1].get("regions", 2)) for spec in specs)
    region_metrics = tuple(f"cascade_freeze_ratio_R{k}" for k in range(max_regions))

    conditions = scenario_conditions(
        [spec.name for spec in specs],
        duration_s=duration_s,
        repetitions=repetitions,
        seed=seed,
    )
    results = run_campaign(
        conditions,
        workers=workers,
        store=store,
        use_cache=use_cache,
        policy=policy,
        journal=journal,
        resume=resume,
        progress=progress,
        hosts=hosts,
    )
    metrics = CASCADE_CORE_METRICS + region_metrics
    table = TableResult(
        table_id="cascade_sweep",
        title="Cascaded SFU topology sweep (netem trunks)",
        columns=("scenario", *metrics),
    )
    for result in results:
        if not result.runs:  # every repetition quarantined
            continue
        row = [result.condition.name]
        for metric in metrics:
            values = result.metric_values(metric)
            row.append(result.summary(metric).mean if values else math.nan)
        table.add_row(*row)
    table.campaign_stats = results.stats.as_dict()
    table.failure_report = results.failures
    table.campaign_hosts = results.hosts
    return table
