"""Section 3 -- static network conditions.

Reproduces:

* **Table 2** -- unconstrained upstream / downstream utilization per VCA,
* **Figure 1a/1b** -- median bitrate vs uplink / downlink capacity,
* **Figure 1c** -- native vs browser clients under uplink shaping,
* **Figure 2** -- encoding parameters (QP, FPS, frame width) vs capacity for
  Meet and Teams-Chrome,
* **Figure 3a/3b** -- freeze ratio vs downlink capacity and FIR count vs
  uplink capacity.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from repro.core.analysis import aggregate_runs
from repro.core.campaign import CampaignPolicy, Condition, run_campaign
from repro.core.profiles import STATIC_SHAPING_LEVELS_MBPS, static_profile
from repro.core.results import FigureSeries, TableResult
from repro.experiments.common import run_two_party_call

__all__ = [
    "DEFAULT_VCAS",
    "measure_capacity_point",
    "run_unconstrained_utilization",
    "run_capacity_sweep",
    "run_platform_comparison",
    "run_encoding_parameters",
    "run_video_freezes",
]

#: The three headline applications of the paper.
DEFAULT_VCAS: tuple[str, ...] = ("meet", "teams", "zoom")

#: The two applications for which WebRTC statistics are available (Section 3.2).
STATS_VCAS: tuple[str, ...] = ("meet", "teams-chrome")


def _profile_for(direction: str, capacity_mbps: Optional[float]):
    if capacity_mbps is None:
        return None, None
    profile = static_profile(capacity_mbps)
    if direction == "up":
        return profile, None
    if direction == "down":
        return None, profile
    raise ValueError("direction must be 'up' or 'down'")


def run_unconstrained_utilization(
    vcas: Sequence[str] = DEFAULT_VCAS,
    duration_s: float = 150.0,
    repetitions: int = 5,
    seed: int = 0,
) -> TableResult:
    """Table 2: average up/down utilization on an unconstrained link."""
    table = TableResult(
        table_id="table2",
        title="Table 2: Unconstrained network utilization (Mbps)",
        columns=("vca", "upstream_mbps", "downstream_mbps", "up_ci_low", "up_ci_high"),
    )
    for vca in vcas:
        ups, downs = [], []
        for repetition in range(repetitions):
            run = run_two_party_call(
                vca, duration_s=duration_s, seed=seed + repetition, collect_stats=False
            )
            ups.append(run.mean_upstream_mbps())
            downs.append(run.mean_downstream_mbps())
        up_summary = aggregate_runs(ups)
        down_summary = aggregate_runs(downs)
        table.add_row(vca, up_summary.mean, down_summary.mean, up_summary.ci_low, up_summary.ci_high)
    return table


def measure_capacity_point(
    vca: str,
    direction: str,
    capacity_mbps: float,
    duration_s: float = 150.0,
    seed: int = 0,
) -> dict[str, float]:
    """One repetition of one Figure 1 grid cell (campaign work unit).

    Module-level (hence picklable) so :func:`repro.core.campaign.run_campaign`
    can execute it in a worker process.
    """
    up_profile, down_profile = _profile_for(direction, capacity_mbps)
    run = run_two_party_call(
        vca,
        up_profile=up_profile,
        down_profile=down_profile,
        duration_s=duration_s,
        seed=seed,
        collect_stats=False,
    )
    if direction == "up":
        return {"median_mbps": run.median_upstream_mbps()}
    return {"median_mbps": run.median_downstream_mbps()}


def run_capacity_sweep(
    direction: str = "up",
    vcas: Sequence[str] = DEFAULT_VCAS,
    levels_mbps: Iterable[float] = STATIC_SHAPING_LEVELS_MBPS,
    duration_s: float = 150.0,
    repetitions: int = 5,
    seed: int = 0,
    workers: Optional[int | str] = None,
    store: Union[str, Path, None, object] = None,
    policy: Optional[CampaignPolicy] = None,
    journal: Union[str, Path, None, object] = None,
    resume: bool = False,
) -> dict[str, FigureSeries]:
    """Figure 1a/1b: median bitrate vs shaped capacity, one series per VCA.

    ``workers`` fans the (level x vca x repetition) grid out over the
    supervised campaign pool of :func:`repro.core.campaign.run_campaign`;
    the default (serial) produces identical numbers.  ``store`` (a
    :class:`repro.results.ResultStore` or directory path) makes the sweep
    incremental: unchanged grid cells re-score from cache.  ``policy``
    tunes timeouts/retries/quarantine and ``journal``/``resume`` checkpoint
    the sweep for crash recovery.
    """
    figure_id = "fig1a" if direction == "up" else "fig1b"
    series: dict[str, FigureSeries] = {
        vca: FigureSeries(
            figure_id=figure_id,
            series_name=vca,
            x_label=f"{direction}link capacity (Mbps)",
            y_label="median bitrate (Mbps)",
        )
        for vca in vcas
    }
    levels = list(levels_mbps)
    conditions = [
        Condition(
            name=f"{vca}@{level}{direction}",
            fn=measure_capacity_point,
            params={
                "vca": vca,
                "direction": direction,
                "capacity_mbps": level,
                "duration_s": duration_s,
            },
            repetitions=repetitions,
            seed=seed,
        )
        for level in levels
        for vca in vcas
    ]
    results = run_campaign(
        conditions, workers=workers, store=store, policy=policy, journal=journal, resume=resume
    )
    for condition_result, (level, vca) in zip(
        results, ((level, vca) for level in levels for vca in vcas)
    ):
        summary = condition_result.summary("median_mbps")
        series[vca].add_point(level, summary.median, summary.ci_low, summary.ci_high)
    return series


def run_platform_comparison(
    direction: str = "up",
    vcas: Sequence[str] = ("teams", "teams-chrome", "zoom", "zoom-chrome"),
    levels_mbps: Iterable[float] = STATIC_SHAPING_LEVELS_MBPS,
    duration_s: float = 150.0,
    repetitions: int = 5,
    seed: int = 0,
    workers: Optional[int | str] = None,
    store: Union[str, Path, None, object] = None,
    policy: Optional[CampaignPolicy] = None,
    journal: Union[str, Path, None, object] = None,
    resume: bool = False,
) -> dict[str, FigureSeries]:
    """Figure 1c: native vs Chrome clients under uplink shaping."""
    result = run_capacity_sweep(
        direction=direction,
        vcas=vcas,
        levels_mbps=levels_mbps,
        duration_s=duration_s,
        repetitions=repetitions,
        seed=seed,
        workers=workers,
        store=store,
        policy=policy,
        journal=journal,
        resume=resume,
    )
    for series in result.values():
        series.figure_id = "fig1c"
    return result


def run_encoding_parameters(
    direction: str = "down",
    vcas: Sequence[str] = STATS_VCAS,
    levels_mbps: Iterable[float] = (0.3, 0.5, 1.0, 1.5, 2.0, 5.0, 10.0),
    duration_s: float = 150.0,
    repetitions: int = 5,
    seed: int = 0,
) -> dict[str, dict[str, FigureSeries]]:
    """Figure 2: QP / FPS / frame width vs capacity from the WebRTC stats.

    Returns ``{metric: {vca: series}}`` for metrics ``qp``, ``fps``, ``width``.
    For downlink constraints the received-stream statistics are reported (the
    stream whose quality the constraint affects); for uplink constraints the
    sent-stream statistics are reported, as in the paper.
    """
    metrics = ("qp", "fps", "width")
    stat_keys = {
        "down": {"qp": "received_qp", "fps": "received_fps", "width": "received_width"},
        "up": {"qp": "sent_qp", "fps": "sent_fps", "width": "sent_width"},
    }[direction]
    figure_id = "fig2-down" if direction == "down" else "fig2-up"
    out: dict[str, dict[str, FigureSeries]] = {
        metric: {
            vca: FigureSeries(
                figure_id=figure_id,
                series_name=vca,
                x_label=f"{direction}link capacity (Mbps)",
                y_label=metric,
            )
            for vca in vcas
        }
        for metric in metrics
    }
    for level in levels_mbps:
        up_profile, down_profile = _profile_for(direction, level)
        for vca in vcas:
            collected: dict[str, list[float]] = {metric: [] for metric in metrics}
            for repetition in range(repetitions):
                run = run_two_party_call(
                    vca,
                    up_profile=up_profile,
                    down_profile=down_profile,
                    duration_s=duration_s,
                    seed=seed + repetition,
                    collect_stats=True,
                )
                for metric in metrics:
                    collected[metric].append(run.mean_stat(stat_keys[metric]))
            for metric in metrics:
                summary = aggregate_runs(collected[metric])
                out[metric][vca].add_point(level, summary.mean, summary.ci_low, summary.ci_high)
    return out


def run_video_freezes(
    vcas: Sequence[str] = STATS_VCAS,
    levels_mbps: Iterable[float] = (0.3, 0.5, 1.0, 1.5, 2.0, 5.0, 10.0),
    duration_s: float = 150.0,
    repetitions: int = 5,
    seed: int = 0,
) -> dict[str, dict[str, FigureSeries]]:
    """Figure 3: freeze ratio vs downlink capacity, FIR count vs uplink capacity.

    Returns ``{"freeze_ratio": {vca: series}, "fir_count": {vca: series}}``.
    """
    freeze_series = {
        vca: FigureSeries("fig3a", vca, "downlink capacity (Mbps)", "freeze ratio") for vca in vcas
    }
    fir_series = {
        vca: FigureSeries("fig3b", vca, "uplink capacity (Mbps)", "total FIR count") for vca in vcas
    }
    for level in levels_mbps:
        for vca in vcas:
            freezes, firs = [], []
            for repetition in range(repetitions):
                down_run = run_two_party_call(
                    vca,
                    down_profile=static_profile(level),
                    duration_s=duration_s,
                    seed=seed + repetition,
                    collect_stats=True,
                )
                freezes.append(down_run.freeze_ratio())
                up_run = run_two_party_call(
                    vca,
                    up_profile=static_profile(level),
                    duration_s=duration_s,
                    seed=seed + repetition,
                    collect_stats=True,
                )
                firs.append(float(up_run.fir_count()))
            f_summary = aggregate_runs(freezes)
            r_summary = aggregate_runs(firs)
            freeze_series[vca].add_point(level, f_summary.mean, f_summary.ci_low, f_summary.ci_high)
            fir_series[vca].add_point(level, r_summary.mean, r_summary.ci_low, r_summary.ci_high)
    return {"freeze_ratio": freeze_series, "fir_count": fir_series}
