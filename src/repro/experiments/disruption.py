"""Section 4 -- transient network disruptions.

Reproduces:

* **Figure 4a / 5a** -- average upstream / downstream bitrate over the course
  of a call with a 30-second capacity drop one minute in,
* **Figure 4b / 5b** -- time-to-recovery as a function of the drop severity,
* **Figure 6** -- the *other* client's upstream bitrate while the measured
  client's downlink is disrupted (the sender-side adaptation signature that
  separates Teams from Meet).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.analysis import aggregate_runs, summarize_series
from repro.core.metrics import time_to_recovery
from repro.core.profiles import DISRUPTION_LEVELS_MBPS, disruption_profile
from repro.core.results import FigureSeries
from repro.experiments.common import run_two_party_call
from repro.experiments.static import DEFAULT_VCAS

__all__ = [
    "run_disruption_timeseries",
    "run_ttr_sweep",
    "run_remote_sender_response",
    "DISRUPTION_START_S",
    "DISRUPTION_DURATION_S",
]

#: The paper starts the drop one minute into a five-minute call and holds it
#: for thirty seconds.
DISRUPTION_START_S = 60.0
DISRUPTION_DURATION_S = 30.0


def _disruption_run(
    vca: str,
    direction: str,
    drop_to_mbps: float,
    duration_s: float,
    seed: int,
    drop_at_s: float,
    drop_duration_s: float,
):
    profile = disruption_profile(drop_to_mbps, drop_at_s=drop_at_s, duration_s=drop_duration_s)
    if direction == "up":
        return run_two_party_call(
            vca, up_profile=profile, duration_s=duration_s, seed=seed, collect_stats=False
        )
    return run_two_party_call(
        vca, down_profile=profile, duration_s=duration_s, seed=seed, collect_stats=False
    )


def run_disruption_timeseries(
    direction: str = "up",
    drop_to_mbps: float = 0.25,
    vcas: Sequence[str] = DEFAULT_VCAS,
    duration_s: float = 300.0,
    repetitions: int = 4,
    seed: int = 0,
    drop_at_s: float = DISRUPTION_START_S,
    drop_duration_s: float = DISRUPTION_DURATION_S,
) -> dict[str, FigureSeries]:
    """Figure 4a / 5a: the average bitrate trace around a disruption."""
    figure_id = "fig4a" if direction == "up" else "fig5a"
    out: dict[str, FigureSeries] = {}
    for vca in vcas:
        runs = []
        for repetition in range(repetitions):
            run = _disruption_run(
                vca, direction, drop_to_mbps, duration_s, seed + repetition, drop_at_s, drop_duration_s
            )
            series = run.upstream_series() if direction == "up" else run.downstream_series()
            runs.append(series)
        times, mean_trace = summarize_series(runs)
        figure = FigureSeries(figure_id, vca, "time (s)", f"{direction}stream bitrate (Mbps)")
        for t, value in zip(times, mean_trace):
            figure.add_point(float(t), float(value))
        out[vca] = figure
    return out


def run_ttr_sweep(
    direction: str = "up",
    vcas: Sequence[str] = DEFAULT_VCAS,
    levels_mbps: Iterable[float] = DISRUPTION_LEVELS_MBPS,
    duration_s: float = 300.0,
    repetitions: int = 4,
    seed: int = 0,
    drop_at_s: float = DISRUPTION_START_S,
    drop_duration_s: float = DISRUPTION_DURATION_S,
) -> dict[str, FigureSeries]:
    """Figure 4b / 5b: time-to-recovery vs severity of the disruption."""
    figure_id = "fig4b" if direction == "up" else "fig5b"
    out: dict[str, FigureSeries] = {
        vca: FigureSeries(figure_id, vca, f"{direction}link capacity during drop (Mbps)", "time to recovery (s)")
        for vca in vcas
    }
    disruption_end = drop_at_s + drop_duration_s
    for level in levels_mbps:
        for vca in vcas:
            ttrs = []
            for repetition in range(repetitions):
                run = _disruption_run(
                    vca, direction, level, duration_s, seed + repetition, drop_at_s, drop_duration_s
                )
                times, mbps = (
                    run.upstream_series() if direction == "up" else run.downstream_series()
                )
                ttrs.append(
                    time_to_recovery(
                        times,
                        mbps,
                        disruption_start=drop_at_s + run.start_s,
                        disruption_end=disruption_end + run.start_s,
                        max_ttr_s=duration_s - disruption_end,
                    )
                )
            summary = aggregate_runs(ttrs)
            out[vca].add_point(level, summary.mean, summary.ci_low, summary.ci_high)
    return out


def run_remote_sender_response(
    vcas: Sequence[str] = ("meet", "teams"),
    drop_to_mbps: float = 0.25,
    duration_s: float = 300.0,
    repetitions: int = 2,
    seed: int = 0,
    drop_at_s: float = DISRUPTION_START_S,
    drop_duration_s: float = DISRUPTION_DURATION_S,
) -> dict[str, FigureSeries]:
    """Figure 6: C2's upstream bitrate while C1's *downlink* is disrupted.

    With Meet the server absorbs the constraint (C2 keeps sending all
    simulcast copies); with Teams C2 itself backs off and must probe its way
    back up, which is what makes Teams slow to recover.
    """
    out: dict[str, FigureSeries] = {}
    for vca in vcas:
        runs = []
        for repetition in range(repetitions):
            run = _disruption_run(
                vca, "down", drop_to_mbps, duration_s, seed + repetition, drop_at_s, drop_duration_s
            )
            series = run.capture.aggregate("C2", "tx").timeseries(0.0, run.end_s)
            runs.append(series)
        times, mean_trace = summarize_series(runs)
        figure = FigureSeries("fig6", vca, "time (s)", "C2 upstream bitrate (Mbps)")
        for t, value in zip(times, mean_trace):
            figure.add_point(float(t), float(value))
        out[vca] = figure
    return out
