"""Window-based reliable transport over the emulated network.

:class:`TcpConnection` is the packet-level machinery shared by the iPerf3
bulk flow and the streaming players: an ACK-clocked sender whose congestion
window is managed by a :class:`~repro.cc.tcp_cubic.CubicState` (or the QUIC
variant), with duplicate-ACK loss detection and a retransmission-timeout
fallback.  It supports two modes:

* **bulk** -- send for as long as the connection is running (iPerf3), and
* **bounded transfer** -- send exactly N bytes and report completion
  (one ABR video chunk).

The implementation deliberately omits everything that does not affect
bandwidth sharing (handshakes, byte-accurate reassembly, flow control): the
paper's competition experiments only depend on how the congestion window
reacts to loss and queueing on the shared bottleneck.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cc.tcp_cubic import CubicState
from repro.net.node import Host
from repro.net.packet import TCP_IP_HEADER_BYTES, Packet, PacketKind
from repro.net.simulator import Simulator

__all__ = ["TcpConnection"]

#: Payload bytes per segment (standard Ethernet MSS).
SEGMENT_BYTES = 1448

#: Size of a pure ACK on the wire.
ACK_BYTES = TCP_IP_HEADER_BYTES + 12

#: Retransmission timeout (conservative, fixed; fine for throughput dynamics).
RTO_S = 1.0


class TcpConnection:
    """One reliable, congestion-controlled connection between two hosts."""

    def __init__(
        self,
        sim: Simulator,
        sender: Host,
        receiver: Host,
        flow_id: str,
        cubic: Optional[CubicState] = None,
        data_kind: PacketKind = PacketKind.TCP_DATA,
        ack_kind: PacketKind = PacketKind.TCP_ACK,
        segment_bytes: int = SEGMENT_BYTES,
    ) -> None:
        self.sim = sim
        self.sender = sender
        self.receiver = receiver
        self.flow_id = flow_id
        self.ack_flow_id = f"{flow_id}:ack"
        self.cubic = cubic or CubicState()
        self.data_kind = data_kind
        self.ack_kind = ack_kind
        self.segment_bytes = segment_bytes

        self._running = False
        self._next_seq = 1
        self._unacked: dict[int, float] = {}
        self._highest_acked = 0
        self._bytes_limit: Optional[int] = None
        self._bytes_queued = 0
        self._on_complete: Optional[Callable[[], None]] = None
        self._last_ack_at = 0.0
        self._last_loss_event_at = -1.0
        self._rtt_s = 0.05
        self._timeout_event = None

        #: Lifetime counters.
        self.bytes_acked = 0
        self.segments_sent = 0
        self.retransmissions = 0

        receiver.register_flow(flow_id, self._on_data)
        sender.register_flow(self.ack_flow_id, self._on_ack)

    # ------------------------------------------------------------ lifecycle
    def start(self, transfer_bytes: Optional[int] = None, on_complete: Optional[Callable[[], None]] = None) -> None:
        """Start sending: bulk mode if ``transfer_bytes`` is None."""
        self._running = True
        self._bytes_limit = transfer_bytes
        self._bytes_queued = 0
        self._on_complete = on_complete
        self._last_ack_at = self.sim.now
        self._try_send()
        self._arm_timeout()

    def stop(self) -> None:
        """Stop sending (remaining in-flight data is abandoned)."""
        self._running = False

    @property
    def is_running(self) -> bool:
        return self._running

    @property
    def smoothed_rtt_s(self) -> float:
        return self._rtt_s

    # ------------------------------------------------------------ send path
    def _try_send(self) -> None:
        if not self._running:
            return
        while len(self._unacked) < int(self.cubic.cwnd):
            if self._bytes_limit is not None and self._bytes_queued >= self._bytes_limit:
                break
            seq = self._next_seq
            self._next_seq += 1
            payload = self.segment_bytes
            if self._bytes_limit is not None:
                payload = min(payload, self._bytes_limit - self._bytes_queued)
                if payload <= 0:
                    break
            self._bytes_queued += payload
            self._unacked[seq] = self.sim.now
            self.segments_sent += 1
            packet = Packet(
                size_bytes=payload + TCP_IP_HEADER_BYTES,
                flow_id=self.flow_id,
                src=self.sender.name,
                dst=self.receiver.name,
                kind=self.data_kind,
                seq=seq,
                created_at=self.sim.now,
                meta={"payload": payload},
            )
            self.sender.send(packet)

    def _on_data(self, packet: Packet) -> None:
        # Receiver side: acknowledge every arriving segment individually
        # (an SACK-like model: the ACK names the exact segment received).
        ack = Packet(
            size_bytes=ACK_BYTES,
            flow_id=self.ack_flow_id,
            src=self.receiver.name,
            dst=self.sender.name,
            kind=self.ack_kind,
            seq=packet.seq,
            created_at=self.sim.now,
            meta={"acked_payload": packet.meta.get("payload", self.segment_bytes)},
        )
        self.receiver.send(ack)

    # ------------------------------------------------------------- ack path
    def _on_ack(self, packet: Packet) -> None:
        if not self._running and not self._unacked:
            return
        now = self.sim.now
        seq = packet.seq
        sent_at = self._unacked.pop(seq, None)
        self._last_ack_at = now
        if sent_at is not None:
            sample = max(now - sent_at, 1e-4)
            self._rtt_s = 0.875 * self._rtt_s + 0.125 * sample
            self.bytes_acked += packet.meta.get("acked_payload", self.segment_bytes)
            self.cubic.on_ack(now, self._rtt_s)
        self._highest_acked = max(self._highest_acked, seq)
        self._detect_losses(now)
        if (
            self._bytes_limit is not None
            and self._bytes_queued >= self._bytes_limit
            and not self._unacked
        ):
            self._running = False
            if self._on_complete is not None:
                callback, self._on_complete = self._on_complete, None
                callback()
            return
        self._try_send()

    def _detect_losses(self, now: float) -> None:
        """Triple-duplicate-ACK analogue: segments 3+ behind the highest ACK are lost."""
        lost = [seq for seq in self._unacked if seq <= self._highest_acked - 3]
        if not lost:
            return
        # At most one multiplicative decrease per round-trip.
        if now - self._last_loss_event_at > self._rtt_s:
            self._last_loss_event_at = now
            self.cubic.on_loss(now)
        for seq in lost:
            del self._unacked[seq]
            self.retransmissions += 1
            if self._bytes_limit is not None:
                # The lost payload still has to be delivered.
                self._bytes_queued -= self.segment_bytes
                self._bytes_queued = max(self._bytes_queued, 0)

    # -------------------------------------------------------------- timeout
    def _arm_timeout(self) -> None:
        if not self._running:
            return
        self.sim.schedule(RTO_S / 2, self._check_timeout)

    def _check_timeout(self) -> None:
        if not self._running:
            return
        now = self.sim.now
        if self._unacked and now - self._last_ack_at > RTO_S:
            self.cubic.on_timeout()
            self.retransmissions += len(self._unacked)
            if self._bytes_limit is not None:
                self._bytes_queued = max(
                    self._bytes_queued - len(self._unacked) * self.segment_bytes, 0
                )
            self._unacked.clear()
            self._last_ack_at = now
            self._try_send()
        self._arm_timeout()
