"""Adaptive-bitrate (ABR) streaming player.

Netflix and YouTube traffic (Section 5.3) is chunked video download with
rate adaptation: the player keeps a playback buffer, requests segments at a
quality chosen from a bitrate ladder, and goes idle (OFF periods) once the
buffer is full.  :class:`AbrPlayer` implements a standard throughput +
buffer-occupancy heuristic; the transport used to fetch each chunk is
supplied by a subclass (parallel TCP for Netflix, QUIC for YouTube), so the
player itself stays transport-agnostic.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

from repro.net.simulator import Simulator

__all__ = ["AbrConfig", "AbrPlayer"]


@dataclass
class AbrConfig:
    """Player parameters."""

    #: Available bitrates in bits per second (a Netflix/YouTube-like ladder).
    ladder_bps: tuple[float, ...] = (
        235_000.0,
        375_000.0,
        560_000.0,
        750_000.0,
        1_050_000.0,
        1_750_000.0,
        2_350_000.0,
        3_000_000.0,
    )
    #: Segment (chunk) duration in seconds of playback.
    chunk_duration_s: float = 4.0
    #: Buffer level above which the player stops requesting (OFF period).
    max_buffer_s: float = 25.0
    #: Buffer level below which the player always picks the lowest quality.
    panic_buffer_s: float = 8.0
    #: Safety factor applied to the throughput estimate when picking quality.
    throughput_safety: float = 0.8


class AbrPlayer(abc.ABC):
    """Buffer- and throughput-driven ABR download loop."""

    def __init__(self, sim: Simulator, config: Optional[AbrConfig] = None) -> None:
        self.sim = sim
        self.config = config or AbrConfig()
        self.buffer_s = 0.0
        self.playing = False
        self._running = False
        self._throughput_estimate_bps = self.config.ladder_bps[0]
        self._chunk_started_at = 0.0
        self._current_quality = 0
        #: History of (time, quality index, chunk bitrate) for analysis.
        self.chunk_log: list[tuple[float, int, float]] = []
        self.rebuffer_events = 0

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Begin streaming."""
        if self._running:
            return
        self._running = True
        self.playing = True
        self._drain_task = self.sim.every(1.0, self._drain_buffer)
        self._request_next_chunk()

    def stop(self) -> None:
        """Stop streaming (the competing application's two minutes are over)."""
        self._running = False
        self.playing = False
        self._drain_task.stop()

    # ----------------------------------------------------------- scheduling
    def _drain_buffer(self) -> None:
        if not self.playing:
            return
        if self.buffer_s > 0:
            self.buffer_s = max(self.buffer_s - 1.0, 0.0)
        elif self._running:
            self.rebuffer_events += 1

    def _request_next_chunk(self) -> None:
        if not self._running:
            return
        if self.buffer_s >= self.config.max_buffer_s:
            # OFF period: check again shortly.
            self.sim.schedule(1.0, self._request_next_chunk)
            return
        quality = self._pick_quality()
        self._current_quality = quality
        bitrate = self.config.ladder_bps[quality]
        chunk_bytes = int(bitrate * self.config.chunk_duration_s / 8)
        self._chunk_started_at = self.sim.now
        self.chunk_log.append((self.sim.now, quality, bitrate))
        self._download_chunk(chunk_bytes, self._on_chunk_complete)

    def _on_chunk_complete(self) -> None:
        elapsed = max(self.sim.now - self._chunk_started_at, 1e-3)
        bitrate = self.config.ladder_bps[self._current_quality]
        observed = bitrate * self.config.chunk_duration_s / elapsed
        self._throughput_estimate_bps = (
            0.7 * self._throughput_estimate_bps + 0.3 * observed
        )
        self.buffer_s += self.config.chunk_duration_s
        if self._running:
            self._request_next_chunk()

    def _pick_quality(self) -> int:
        """Highest ladder rung sustainable at the (discounted) throughput estimate."""
        if self.buffer_s < self.config.panic_buffer_s:
            budget = self._throughput_estimate_bps * self.config.throughput_safety
        else:
            budget = self._throughput_estimate_bps
        quality = 0
        for index, rate in enumerate(self.config.ladder_bps):
            if rate <= budget:
                quality = index
        return quality

    # ------------------------------------------------------------ transport
    @abc.abstractmethod
    def _download_chunk(self, chunk_bytes: int, on_complete) -> None:
        """Fetch ``chunk_bytes`` over the concrete transport, then call back."""

    # ---------------------------------------------------------------- stats
    @property
    def current_bitrate_bps(self) -> float:
        """Bitrate of the most recently requested chunk."""
        return self.config.ladder_bps[self._current_quality]

    @property
    def throughput_estimate_bps(self) -> float:
        return self._throughput_estimate_bps
