"""The Netflix competitor: ABR over many parallel TCP connections.

The paper observes (Figure 14) that Netflix, when starved by a competing
Zoom call on a 0.5 Mbps link, opens many TCP connections -- 28 over a
two-minute experiment, up to 11 in parallel -- without managing to claim a
fair share.  :class:`NetflixPlayer` reproduces that behaviour: every chunk is
fetched over a *fresh* set of parallel TCP connections, and the degree of
parallelism grows as the player's throughput estimate falls behind the
lowest ladder rung (the starvation response).
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.apps.abr import AbrConfig, AbrPlayer
from repro.apps.tcp import TcpConnection
from repro.cc.tcp_cubic import CubicState
from repro.net.node import Host
from repro.net.simulator import Simulator

__all__ = ["NetflixPlayer"]


class NetflixPlayer(AbrPlayer):
    """ABR player downloading each chunk over parallel TCP connections."""

    def __init__(
        self,
        sim: Simulator,
        client: Host,
        server: Host,
        flow_prefix: str = "netflix",
        config: Optional[AbrConfig] = None,
        max_parallel_connections: int = 11,
    ) -> None:
        super().__init__(sim, config)
        self.client = client
        self.server = server
        self.flow_prefix = flow_prefix
        self.max_parallel_connections = max_parallel_connections
        self._conn_ids = itertools.count(1)
        #: Log of (time, connections open in parallel) per chunk -- Figure 14b.
        self.connection_log: list[tuple[float, int]] = []
        self.connections_opened = 0

    # ------------------------------------------------------------ transport
    def _parallelism(self) -> int:
        """How many connections to use for the next chunk.

        One connection when healthy; more as the throughput estimate falls
        below the lowest sustainable rung (the starvation response the paper
        observes against Zoom).
        """
        floor = self.config.ladder_bps[0]
        if self._throughput_estimate_bps >= floor:
            return 1
        starvation = floor / max(self._throughput_estimate_bps, 1.0)
        return int(min(max(starvation, 1.0) + 1, self.max_parallel_connections))

    def _download_chunk(self, chunk_bytes: int, on_complete) -> None:
        parallelism = self._parallelism()
        self.connection_log.append((self.sim.now, parallelism))
        self.connections_opened += parallelism
        share = max(chunk_bytes // parallelism, 20_000)
        remaining = parallelism

        def part_done() -> None:
            nonlocal remaining
            remaining -= 1
            if remaining == 0:
                on_complete()

        for _ in range(parallelism):
            conn = TcpConnection(
                self.sim,
                sender=self.server,
                receiver=self.client,
                flow_id=f"{self.flow_prefix}-{next(self._conn_ids)}",
                cubic=CubicState(),
            )
            conn.start(transfer_bytes=share, on_complete=part_done)
