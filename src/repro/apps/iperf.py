"""The iPerf3 competitor: one long-lived TCP CUBIC bulk flow.

Section 5.2 competes each VCA against a 120-second iPerf3 TCP flow whose
server sits on the same network (~2 ms RTT).  :class:`IperfFlow` wraps a
bulk-mode :class:`~repro.apps.tcp.TcpConnection` in either direction:
``direction="up"`` uploads from the local client (the file-upload case),
``direction="down"`` downloads from the server (the file-download case).
"""

from __future__ import annotations

from typing import Optional

from repro.apps.tcp import TcpConnection
from repro.cc.tcp_cubic import CubicConfig, CubicState
from repro.net.node import Host
from repro.net.simulator import Simulator

__all__ = ["IperfFlow"]


class IperfFlow:
    """A long-lived TCP CUBIC flow between a local client and a server."""

    def __init__(
        self,
        sim: Simulator,
        client: Host,
        server: Host,
        direction: str = "down",
        flow_id: Optional[str] = None,
        cubic_config: Optional[CubicConfig] = None,
    ) -> None:
        if direction not in ("up", "down"):
            raise ValueError("direction must be 'up' or 'down'")
        self.sim = sim
        self.direction = direction
        self.flow_id = flow_id or f"iperf-{client.name}-{direction}"
        sender, receiver = (client, server) if direction == "up" else (server, client)
        self.connection = TcpConnection(
            sim,
            sender=sender,
            receiver=receiver,
            flow_id=self.flow_id,
            cubic=CubicState(cubic_config),
        )

    def start(self) -> None:
        """Start the bulk transfer."""
        self.connection.start()

    def stop(self) -> None:
        """Stop the transfer (iPerf3's -t deadline expired)."""
        self.connection.stop()

    @property
    def bytes_acked(self) -> int:
        """Application-level goodput so far, in bytes."""
        return self.connection.bytes_acked

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IperfFlow({self.flow_id!r}, direction={self.direction!r})"
