"""The YouTube competitor: ABR over a single QUIC connection.

YouTube delivers video over QUIC (UDP); its fairness against other traffic
depends on the congestion-controller configuration (Corbel et al., cited as
reference [9] of the paper).  :class:`YouTubePlayer` fetches every chunk over
one long-lived QUIC connection driven by the CUBIC variant in
:mod:`repro.cc.quic_cc`, with packets marked as QUIC so captures can separate
it from TCP traffic.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.abr import AbrConfig, AbrPlayer
from repro.apps.tcp import TcpConnection
from repro.cc.quic_cc import QuicCubicState
from repro.net.node import Host
from repro.net.packet import PacketKind
from repro.net.simulator import Simulator

__all__ = ["YouTubePlayer"]


class YouTubePlayer(AbrPlayer):
    """ABR player downloading chunks over one QUIC connection."""

    def __init__(
        self,
        sim: Simulator,
        client: Host,
        server: Host,
        flow_id: str = "youtube",
        config: Optional[AbrConfig] = None,
    ) -> None:
        super().__init__(sim, config)
        self.client = client
        self.server = server
        self.flow_id = flow_id
        self.connection = TcpConnection(
            sim,
            sender=server,
            receiver=client,
            flow_id=flow_id,
            cubic=QuicCubicState(),
            data_kind=PacketKind.QUIC_DATA,
            ack_kind=PacketKind.QUIC_ACK,
        )

    def _download_chunk(self, chunk_bytes: int, on_complete) -> None:
        # Reuse the single QUIC connection for every chunk (HTTP/3 request
        # multiplexing); a finished transfer leaves the congestion window
        # warm for the next one.
        self.connection.start(transfer_bytes=chunk_bytes, on_complete=on_complete)
