"""Network emulation substrate.

This package is the synthetic replacement for the paper's physical testbed
(two laptops, a Turris Omnia router and ``tc``-based traffic shaping).  It
provides a discrete-event, packet-level emulator with:

* :class:`~repro.net.simulator.Simulator` -- the event scheduler / clock,
* :class:`~repro.net.packet.Packet` -- the unit of transmission,
* :class:`~repro.net.link.Link` -- a shaped link (token-bucket rate,
  drop-tail queue, propagation delay and random loss),
* :class:`~repro.net.shaper.BandwidthProfile` and
  :class:`~repro.net.shaper.LinkShaper` -- time-varying capacity, the
  equivalent of ``tc`` reconfigurations during an experiment,
* :class:`~repro.net.node.Host` -- an endpoint that applications attach to,
* :class:`~repro.net.router.Router` -- packet forwarding between links,
* :class:`~repro.net.topology` -- canonical topologies used by the paper's
  experiments (access-link, relay-server and shared-bottleneck competition
  topologies).
"""

from repro.net.link import Link, LinkStats
from repro.net.node import Host
from repro.net.packet import Packet, PacketKind
from repro.net.router import Router
from repro.net.shaper import BandwidthProfile, LinkShaper
from repro.net.simulator import Simulator
from repro.net.topology import (
    AccessTopology,
    CompetitionTopology,
    build_access_topology,
    build_competition_topology,
)

__all__ = [
    "Simulator",
    "Packet",
    "PacketKind",
    "Link",
    "LinkStats",
    "LinkShaper",
    "BandwidthProfile",
    "Host",
    "Router",
    "AccessTopology",
    "CompetitionTopology",
    "build_access_topology",
    "build_competition_topology",
]
