"""End hosts of the emulated testbed.

A :class:`Host` corresponds to one of the paper's machines: the VCA clients
C1 and C2, the competing-flow machines F1 and F2, or a media/iPerf server.
Hosts do two things:

* **send** packets into the network through their egress (the first hop the
  topology wired up for them), and
* **receive** packets and dispatch them to the application flow they belong
  to (looked up by ``flow_id``), the same way the kernel demultiplexes
  sockets on the real machines.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.net.packet import Packet
from repro.net.simulator import Simulator

__all__ = ["Host"]


class Host:
    """An endpoint machine in the emulated testbed.

    Besides the per-packet :meth:`send` / :meth:`receive` pair, hosts carry a
    batched path (:meth:`send_batch` / :meth:`receive_batch`) used by the
    event-driven media pipeline: a packetized frame burst traverses the stack
    as one Python call per hop instead of one call per packet.  Both paths
    produce identical timestamps, counters and tap invocations; the batch
    variants only amortize interpreter dispatch.
    """

    __slots__ = (
        "sim",
        "name",
        "_egress",
        "_egress_batch",
        "_flow_handlers",
        "_flow_batch_handlers",
        "_default_handler",
        "_default_batch_handler",
        "bytes_sent",
        "bytes_received",
        "packets_sent",
        "packets_received",
        "taps",
    )

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self._egress: Optional[Callable[[Packet], None]] = None
        self._egress_batch: Optional[Callable[[Sequence[Packet]], None]] = None
        self._flow_handlers: dict[str, Callable[[Packet], None]] = {}
        self._flow_batch_handlers: dict[str, Callable[[Sequence[Packet]], None]] = {}
        self._default_handler: Optional[Callable[[Packet], None]] = None
        self._default_batch_handler: Optional[Callable[[Sequence[Packet]], None]] = None
        #: Per-host counters mirroring ``ifconfig``-style statistics.
        self.bytes_sent = 0
        self.bytes_received = 0
        self.packets_sent = 0
        self.packets_received = 0
        #: Optional packet capture taps (the emulated ``tcpdump``).  Each tap
        #: is called with ("tx"|"rx", packet).
        self.taps: list[Callable[[str, Packet], None]] = []

    # ------------------------------------------------------------ wiring
    def set_egress(
        self,
        egress: Callable[[Packet], None],
        batch: Optional[Callable[[Sequence[Packet]], None]] = None,
    ) -> None:
        """Attach the first-hop send function (done by the topology builder).

        ``batch``, when provided, accepts a whole packet train in one call
        (``Link.send_batch`` / ``DelayPipe.send_batch``); without it,
        :meth:`send_batch` falls back to per-packet egress.
        """
        self._egress = egress
        self._egress_batch = batch

    def register_flow(
        self,
        flow_id: str,
        handler: Callable[[Packet], None],
        batch_handler: Optional[Callable[[Sequence[Packet]], None]] = None,
    ) -> None:
        """Register the receive handler for a flow terminating at this host."""
        if flow_id in self._flow_handlers:
            raise ValueError(f"flow {flow_id!r} already registered on {self.name}")
        self._flow_handlers[flow_id] = handler
        if batch_handler is not None:
            self._flow_batch_handlers[flow_id] = batch_handler

    def unregister_flow(self, flow_id: str) -> None:
        """Remove a flow handler (used when an application leaves the call)."""
        self._flow_handlers.pop(flow_id, None)
        self._flow_batch_handlers.pop(flow_id, None)

    def set_default_handler(
        self,
        handler: Callable[[Packet], None],
        batch_handler: Optional[Callable[[Sequence[Packet]], None]] = None,
    ) -> None:
        """Handler for packets whose flow has no dedicated handler."""
        self._default_handler = handler
        self._default_batch_handler = batch_handler

    # --------------------------------------------------------- data path
    def send(self, packet: Packet) -> None:
        """Hand a packet to the network.

        ``created_at`` is only stamped if the packet does not already carry a
        timestamp: a media server forwarding a packet keeps the original
        capture timestamp so receivers observe *end-to-end* one-way delay,
        exactly what the real clients' RTCP feedback reflects.
        """
        if self._egress is None:
            raise RuntimeError(f"host {self.name!r} has no egress configured")
        packet.src = self.name
        if packet.created_at == 0.0:
            packet.created_at = self.sim._now
        self.bytes_sent += packet.size_bytes
        self.packets_sent += 1
        if self.taps:
            for tap in self.taps:
                tap("tx", packet)
        self._egress(packet)

    def send_batch(self, packets: Sequence[Packet]) -> None:
        """Hand a train of packets to the network in one transaction.

        Stamping, counters and taps are identical to calling :meth:`send`
        once per packet; the egress hop is entered once for the whole train
        when the first hop supports batches.
        """
        if not packets:
            return
        if self._egress is None:
            raise RuntimeError(f"host {self.name!r} has no egress configured")
        name = self.name
        now = self.sim._now
        taps = self.taps
        size_total = 0
        for packet in packets:
            packet.src = name
            if packet.created_at == 0.0:
                packet.created_at = now
            size_total += packet.size_bytes
            if taps:
                for tap in taps:
                    tap("tx", packet)
        self.bytes_sent += size_total
        self.packets_sent += len(packets)
        egress_batch = self._egress_batch
        if egress_batch is not None:
            egress_batch(packets)
        else:
            egress = self._egress
            for packet in packets:
                egress(packet)

    def send_forwarded_batch(self, packets: Sequence[Packet], size_total: int) -> None:
        """Send a train of already-stamped forwarded copies.

        The media server constructs every copy with this host as ``src`` and
        a propagated ``created_at``, and it has the train's byte total from
        its own accounting, so the per-packet stamping pass of
        :meth:`send_batch` is redundant; taps still see every packet.
        """
        if not packets:
            return
        if self.taps:
            taps = self.taps
            for packet in packets:
                for tap in taps:
                    tap("tx", packet)
        self.bytes_sent += size_total
        self.packets_sent += len(packets)
        egress_batch = self._egress_batch
        if egress_batch is not None:
            egress_batch(packets)
        else:
            egress = self._egress
            if egress is None:
                raise RuntimeError(f"host {self.name!r} has no egress configured")
            for packet in packets:
                egress(packet)

    def receive(self, packet: Packet) -> None:
        """Deliver a packet arriving from the network to its flow handler."""
        self.bytes_received += packet.size_bytes
        self.packets_received += 1
        if self.taps:
            for tap in self.taps:
                tap("rx", packet)
        handler = self._flow_handlers.get(packet.flow_id, self._default_handler)
        if handler is not None:
            handler(packet)

    def receive_batch(self, packets: Sequence[Packet]) -> None:
        """Deliver a train of packets arriving together from the network.

        Trains produced by the media pipeline are single-flow; one pass sums
        the byte counters and checks flow homogeneity, then the train is
        handed to the flow's batch handler in a single call.  Mixed-flow
        trains fall back to runs of consecutive identical flow ids so handler
        semantics match per-packet delivery exactly.
        """
        if not packets:
            return
        first = packets[0]
        flow_id = first.flow_id
        size_total = first.size_bytes
        uniform = True
        for packet in packets[1:] if len(packets) > 1 else ():
            size_total += packet.size_bytes
            if packet.flow_id != flow_id:
                uniform = False
        if self.taps:
            taps = self.taps
            for packet in packets:
                for tap in taps:
                    tap("rx", packet)
        self.bytes_received += size_total
        self.packets_received += len(packets)
        if uniform:
            self._dispatch_run(flow_id, packets)
            return
        start = 0
        n = len(packets)
        while start < n:
            flow_id = packets[start].flow_id
            end = start + 1
            while end < n and packets[end].flow_id == flow_id:
                end += 1
            self._dispatch_run(flow_id, packets[start:end])
            start = end

    def _dispatch_run(self, flow_id: str, run: Sequence[Packet]) -> None:
        handlers = self._flow_handlers
        if flow_id in handlers:
            batch_handler = self._flow_batch_handlers.get(flow_id)
            if batch_handler is not None:
                batch_handler(run)
            else:
                handler = handlers[flow_id]
                for packet in run:
                    handler(packet)
        elif self._default_batch_handler is not None:
            self._default_batch_handler(run)
        elif self._default_handler is not None:
            handler = self._default_handler
            for packet in run:
                handler(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Host({self.name!r})"
