"""End hosts of the emulated testbed.

A :class:`Host` corresponds to one of the paper's machines: the VCA clients
C1 and C2, the competing-flow machines F1 and F2, or a media/iPerf server.
Hosts do two things:

* **send** packets into the network through their egress (the first hop the
  topology wired up for them), and
* **receive** packets and dispatch them to the application flow they belong
  to (looked up by ``flow_id``), the same way the kernel demultiplexes
  sockets on the real machines.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.packet import Packet
from repro.net.simulator import Simulator

__all__ = ["Host"]


class Host:
    """An endpoint machine in the emulated testbed."""

    __slots__ = (
        "sim",
        "name",
        "_egress",
        "_flow_handlers",
        "_default_handler",
        "bytes_sent",
        "bytes_received",
        "packets_sent",
        "packets_received",
        "taps",
    )

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self._egress: Optional[Callable[[Packet], None]] = None
        self._flow_handlers: dict[str, Callable[[Packet], None]] = {}
        self._default_handler: Optional[Callable[[Packet], None]] = None
        #: Per-host counters mirroring ``ifconfig``-style statistics.
        self.bytes_sent = 0
        self.bytes_received = 0
        self.packets_sent = 0
        self.packets_received = 0
        #: Optional packet capture taps (the emulated ``tcpdump``).  Each tap
        #: is called with ("tx"|"rx", packet).
        self.taps: list[Callable[[str, Packet], None]] = []

    # ------------------------------------------------------------ wiring
    def set_egress(self, egress: Callable[[Packet], None]) -> None:
        """Attach the first-hop send function (done by the topology builder)."""
        self._egress = egress

    def register_flow(self, flow_id: str, handler: Callable[[Packet], None]) -> None:
        """Register the receive handler for a flow terminating at this host."""
        if flow_id in self._flow_handlers:
            raise ValueError(f"flow {flow_id!r} already registered on {self.name}")
        self._flow_handlers[flow_id] = handler

    def unregister_flow(self, flow_id: str) -> None:
        """Remove a flow handler (used when an application leaves the call)."""
        self._flow_handlers.pop(flow_id, None)

    def set_default_handler(self, handler: Callable[[Packet], None]) -> None:
        """Handler for packets whose flow has no dedicated handler."""
        self._default_handler = handler

    # --------------------------------------------------------- data path
    def send(self, packet: Packet) -> None:
        """Hand a packet to the network.

        ``created_at`` is only stamped if the packet does not already carry a
        timestamp: a media server forwarding a packet keeps the original
        capture timestamp so receivers observe *end-to-end* one-way delay,
        exactly what the real clients' RTCP feedback reflects.
        """
        if self._egress is None:
            raise RuntimeError(f"host {self.name!r} has no egress configured")
        packet.src = self.name
        if packet.created_at == 0.0:
            packet.created_at = self.sim._now
        self.bytes_sent += packet.size_bytes
        self.packets_sent += 1
        if self.taps:
            for tap in self.taps:
                tap("tx", packet)
        self._egress(packet)

    def receive(self, packet: Packet) -> None:
        """Deliver a packet arriving from the network to its flow handler."""
        self.bytes_received += packet.size_bytes
        self.packets_received += 1
        if self.taps:
            for tap in self.taps:
                tap("rx", packet)
        handler = self._flow_handlers.get(packet.flow_id, self._default_handler)
        if handler is not None:
            handler(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Host({self.name!r})"
