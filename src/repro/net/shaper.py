"""Time-varying bandwidth control -- the emulated ``tc`` command sequence.

The paper applies three kinds of shaping:

* **static shaping** for the capacity sweeps of Section 3
  (``{0.3, 0.4, ..., 1.5, 2, 5, 10}`` Mbps),
* **transient disruptions** for Section 4 (one minute into the call the
  capacity drops to ``{0.25, 0.5, 0.75, 1.0}`` Mbps for 30 seconds and then
  returns to 1 Gbps), and
* an unconstrained 1 Gbps profile.

:class:`BandwidthProfile` describes a piecewise-constant capacity over time;
:class:`LinkShaper` applies a profile to a :class:`~repro.net.link.Link` by
scheduling ``set_rate`` calls on the simulator, exactly the way the authors'
scripts invoked ``tc`` at pre-planned times.

Beyond the paper's handful of steps, profiles may be *dense*: a
trace-driven or synthetic capacity process (:mod:`repro.netem.traces`) has
hundreds of steps per minute.  ``rate_at`` binary-searches the schedule, and
:class:`LinkShaper` switches to *chained* scheduling for dense profiles --
one pending event that re-arms itself per step -- instead of pre-loading the
whole schedule into the heap.  Sparse profiles keep the original eager
scheduling so existing experiments stay byte-identical at seed.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterable, Sequence

from repro.net.link import Link
from repro.net.simulator import Simulator

__all__ = ["BandwidthProfile", "LinkShaper", "UNCONSTRAINED_BPS", "DENSE_STEP_THRESHOLD"]

#: Profiles with more steps than this are applied via chained scheduling.
DENSE_STEP_THRESHOLD = 64

#: The paper's unconstrained access link: 1 Gbps symmetric fibre.
UNCONSTRAINED_BPS = 1_000_000_000.0


@dataclass(frozen=True)
class BandwidthProfile:
    """A piecewise-constant capacity schedule.

    ``steps`` is a sequence of ``(start_time_s, rate_bps)`` pairs sorted by
    start time.  The capacity before the first step is ``initial_bps``.
    """

    initial_bps: float = UNCONSTRAINED_BPS
    steps: tuple[tuple[float, float], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.initial_bps <= 0:
            raise ValueError("initial capacity must be positive")
        previous = -1.0
        for start, rate in self.steps:
            if rate <= 0:
                raise ValueError("capacities must be positive")
            if start < 0:
                raise ValueError("step times must be non-negative")
            if start <= previous:
                raise ValueError("step times must be strictly increasing")
            previous = start

    # ------------------------------------------------------------ factories
    @classmethod
    def constant(cls, rate_bps: float) -> "BandwidthProfile":
        """A static shaping level held for the whole experiment."""
        return cls(initial_bps=rate_bps)

    @classmethod
    def unconstrained(cls) -> "BandwidthProfile":
        """The 1 Gbps baseline profile."""
        return cls(initial_bps=UNCONSTRAINED_BPS)

    @classmethod
    def disruption(
        cls,
        drop_to_bps: float,
        drop_at_s: float = 60.0,
        duration_s: float = 30.0,
        baseline_bps: float = UNCONSTRAINED_BPS,
    ) -> "BandwidthProfile":
        """The Section 4 transient-disruption profile.

        The capacity starts at ``baseline_bps``, drops to ``drop_to_bps`` at
        ``drop_at_s`` and is restored ``duration_s`` seconds later.
        """
        return cls(
            initial_bps=baseline_bps,
            steps=((drop_at_s, drop_to_bps), (drop_at_s + duration_s, baseline_bps)),
        )

    @classmethod
    def from_segments(cls, segments: Iterable[tuple[float, float]]) -> "BandwidthProfile":
        """Build a profile from ``(start_time, rate_bps)`` segments.

        The first segment must start at time zero and provides the initial
        capacity.
        """
        items: Sequence[tuple[float, float]] = tuple(segments)
        if not items:
            raise ValueError("at least one segment is required")
        first_start, first_rate = items[0]
        if first_start != 0.0:
            raise ValueError("the first segment must start at time 0")
        return cls(initial_bps=first_rate, steps=tuple(items[1:]))

    @classmethod
    def from_samples(
        cls, bin_s: float, rates_bps: Sequence[float]
    ) -> "BandwidthProfile":
        """Build a dense profile from per-bin capacity samples.

        Sample ``k`` holds from ``k * bin_s``; consecutive equal samples are
        coalesced into one step so the schedule only carries actual changes.
        """
        if bin_s <= 0.0:
            raise ValueError("sample bin width must be positive")
        if not rates_bps:
            raise ValueError("at least one capacity sample is required")
        segments: list[tuple[float, float]] = []
        previous: float | None = None
        for index, rate in enumerate(rates_bps):
            if rate != previous:
                segments.append((index * bin_s, float(rate)))
                previous = float(rate)
        return cls.from_segments(segments)

    # ------------------------------------------------------------- queries
    @cached_property
    def _step_starts(self) -> list[float]:
        """Step start times, cached for binary search (dense profiles)."""
        return [start for start, _ in self.steps]

    def rate_at(self, time_s: float) -> float:
        """Capacity in effect at simulation time ``time_s``."""
        index = bisect_right(self._step_starts, time_s)
        if index == 0:
            return self.initial_bps
        return self.steps[index - 1][1]

    def change_times(self) -> list[float]:
        """Times at which the capacity changes."""
        return [start for start, _ in self.steps]


class LinkShaper:
    """Applies a :class:`BandwidthProfile` to a link.

    The shaper is the emulation of the experiment scripts calling ``tc`` on
    the router at scheduled times: it sets the link's initial rate
    immediately and schedules the future rate changes.

    ``mode`` selects how the steps reach the simulator heap:

    * ``"eager"`` -- one pre-scheduled event per step (the original
      behaviour; event sequence numbers are allocated at apply time, which
      is what existing seeded experiments depend on),
    * ``"chained"`` -- a single pending event that applies the next step and
      re-arms itself, keeping heap occupancy O(1) for trace-driven
      schedules with thousands of steps,
    * ``"auto"`` (default) -- eager for sparse profiles, chained above
      :data:`DENSE_STEP_THRESHOLD` steps.
    """

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        profile: BandwidthProfile,
        mode: str = "auto",
    ) -> None:
        if mode not in ("auto", "eager", "chained"):
            raise ValueError(f"unknown shaper mode {mode!r}")
        self.sim = sim
        self.link = link
        self.profile = profile
        self.mode = mode
        self._applied = False
        self._steps: tuple[tuple[float, float], ...] = ()
        self._index = 0

    def apply(self) -> None:
        """Set the initial rate and schedule all future changes."""
        if self._applied:
            raise RuntimeError("profile already applied to this link")
        self._applied = True
        self.link.set_rate(self.profile.rate_at(self.sim.now))
        steps = self.profile.steps
        chained = self.mode == "chained" or (
            self.mode == "auto" and len(steps) > DENSE_STEP_THRESHOLD
        )
        if not chained:
            for start, rate in steps:
                self.sim.schedule_at(start, lambda r=rate: self.link.set_rate(r))
            return
        self._steps = steps
        # Steps at or before now are already covered by rate_at(now).
        index = 0
        now = self.sim.now
        while index < len(steps) and steps[index][0] <= now:
            index += 1
        self._index = index
        self._arm()

    def _arm(self) -> None:
        if self._index < len(self._steps):
            self.sim.call_at(self._steps[self._index][0], self._apply_next)

    def _apply_next(self) -> None:
        _, rate = self._steps[self._index]
        self._index += 1
        self.link.set_rate(rate)
        self._arm()
