"""Time-varying bandwidth control -- the emulated ``tc`` command sequence.

The paper applies three kinds of shaping:

* **static shaping** for the capacity sweeps of Section 3
  (``{0.3, 0.4, ..., 1.5, 2, 5, 10}`` Mbps),
* **transient disruptions** for Section 4 (one minute into the call the
  capacity drops to ``{0.25, 0.5, 0.75, 1.0}`` Mbps for 30 seconds and then
  returns to 1 Gbps), and
* an unconstrained 1 Gbps profile.

:class:`BandwidthProfile` describes a piecewise-constant capacity over time;
:class:`LinkShaper` applies a profile to a :class:`~repro.net.link.Link` by
scheduling ``set_rate`` calls on the simulator, exactly the way the authors'
scripts invoked ``tc`` at pre-planned times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.net.link import Link
from repro.net.simulator import Simulator

__all__ = ["BandwidthProfile", "LinkShaper", "UNCONSTRAINED_BPS"]

#: The paper's unconstrained access link: 1 Gbps symmetric fibre.
UNCONSTRAINED_BPS = 1_000_000_000.0


@dataclass(frozen=True)
class BandwidthProfile:
    """A piecewise-constant capacity schedule.

    ``steps`` is a sequence of ``(start_time_s, rate_bps)`` pairs sorted by
    start time.  The capacity before the first step is ``initial_bps``.
    """

    initial_bps: float = UNCONSTRAINED_BPS
    steps: tuple[tuple[float, float], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.initial_bps <= 0:
            raise ValueError("initial capacity must be positive")
        previous = -1.0
        for start, rate in self.steps:
            if rate <= 0:
                raise ValueError("capacities must be positive")
            if start < 0:
                raise ValueError("step times must be non-negative")
            if start <= previous:
                raise ValueError("step times must be strictly increasing")
            previous = start

    # ------------------------------------------------------------ factories
    @classmethod
    def constant(cls, rate_bps: float) -> "BandwidthProfile":
        """A static shaping level held for the whole experiment."""
        return cls(initial_bps=rate_bps)

    @classmethod
    def unconstrained(cls) -> "BandwidthProfile":
        """The 1 Gbps baseline profile."""
        return cls(initial_bps=UNCONSTRAINED_BPS)

    @classmethod
    def disruption(
        cls,
        drop_to_bps: float,
        drop_at_s: float = 60.0,
        duration_s: float = 30.0,
        baseline_bps: float = UNCONSTRAINED_BPS,
    ) -> "BandwidthProfile":
        """The Section 4 transient-disruption profile.

        The capacity starts at ``baseline_bps``, drops to ``drop_to_bps`` at
        ``drop_at_s`` and is restored ``duration_s`` seconds later.
        """
        return cls(
            initial_bps=baseline_bps,
            steps=((drop_at_s, drop_to_bps), (drop_at_s + duration_s, baseline_bps)),
        )

    @classmethod
    def from_segments(cls, segments: Iterable[tuple[float, float]]) -> "BandwidthProfile":
        """Build a profile from ``(start_time, rate_bps)`` segments.

        The first segment must start at time zero and provides the initial
        capacity.
        """
        items: Sequence[tuple[float, float]] = tuple(segments)
        if not items:
            raise ValueError("at least one segment is required")
        first_start, first_rate = items[0]
        if first_start != 0.0:
            raise ValueError("the first segment must start at time 0")
        return cls(initial_bps=first_rate, steps=tuple(items[1:]))

    # ------------------------------------------------------------- queries
    def rate_at(self, time_s: float) -> float:
        """Capacity in effect at simulation time ``time_s``."""
        rate = self.initial_bps
        for start, step_rate in self.steps:
            if time_s >= start:
                rate = step_rate
            else:
                break
        return rate

    def change_times(self) -> list[float]:
        """Times at which the capacity changes."""
        return [start for start, _ in self.steps]


class LinkShaper:
    """Applies a :class:`BandwidthProfile` to a link.

    The shaper is the emulation of the experiment scripts calling ``tc`` on
    the router at scheduled times: it sets the link's initial rate
    immediately and schedules one rate change per profile step.
    """

    def __init__(self, sim: Simulator, link: Link, profile: BandwidthProfile) -> None:
        self.sim = sim
        self.link = link
        self.profile = profile
        self._applied = False

    def apply(self) -> None:
        """Set the initial rate and schedule all future changes."""
        if self._applied:
            raise RuntimeError("profile already applied to this link")
        self._applied = True
        self.link.set_rate(self.profile.rate_at(self.sim.now))
        for start, rate in self.profile.steps:
            self.sim.schedule_at(start, lambda r=rate: self.link.set_rate(r))
