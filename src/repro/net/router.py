"""Packet forwarding elements: the emulated home router, switch and WAN core.

The paper's findings are entirely driven by the *shaped access link*; every
other hop in their testbed (the campus network, the VCA provider's data
centre) is effectively unconstrained.  The :class:`Router` therefore supports
two kinds of forwarding entries:

* a **link route**, which hands the packet to a :class:`~repro.net.link.Link`
  (used for the shaped access / bottleneck links where queueing matters), and
* a **delay route**, which delivers the packet to the next node after a fixed
  propagation delay without serialization or queueing (used for the
  unconstrained WAN path, keeping the event count low so large parameter
  sweeps stay fast).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

from repro.net.link import Link
from repro.net.packet import Packet
from repro.net.simulator import Simulator

__all__ = ["Router", "ForwardingEntry"]


@dataclass
class ForwardingEntry:
    """One routing-table entry: either a link hop or a pure-delay hop."""

    link: Optional[Link] = None
    next_hop: Optional[Callable[[Packet], None]] = None
    delay_s: float = 0.0

    def forward(self, sim: Simulator, packet: Packet) -> None:
        if self.link is not None:
            self.link.send(packet)
            return
        assert self.next_hop is not None
        if self.delay_s > 0:
            sim.schedule(self.delay_s, lambda p=packet: self.next_hop(p))  # type: ignore[misc]
        else:
            self.next_hop(packet)


class Router:
    """A forwarding element with a destination-keyed routing table."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self._routes: dict[str, ForwardingEntry] = {}
        self._default: Optional[ForwardingEntry] = None
        self.packets_forwarded = 0

    # ----------------------------------------------------------- config
    def add_link_route(self, dst: str, link: Link) -> None:
        """Route packets destined to ``dst`` onto ``link``."""
        self._routes[dst] = ForwardingEntry(link=link)

    def add_delay_route(
        self, dst: str, receiver: Callable[[Packet], None], delay_s: float = 0.0
    ) -> None:
        """Route packets destined to ``dst`` straight to ``receiver`` after a delay."""
        self._routes[dst] = ForwardingEntry(next_hop=receiver, delay_s=delay_s)

    def set_default_link(self, link: Link) -> None:
        """Default route over a link (e.g. 'everything else goes upstream')."""
        self._default = ForwardingEntry(link=link)

    def set_default_delay_route(
        self, receiver: Callable[[Packet], None], delay_s: float = 0.0
    ) -> None:
        """Default route delivered after a fixed delay."""
        self._default = ForwardingEntry(next_hop=receiver, delay_s=delay_s)

    # --------------------------------------------------------- data path
    def receive(self, packet: Packet) -> None:
        """Forward a packet according to the routing table."""
        entry = self._routes.get(packet.dst, self._default)
        if entry is None:
            raise RuntimeError(
                f"router {self.name!r} has no route for destination {packet.dst!r}"
            )
        self.packets_forwarded += 1
        entry.forward(self.sim, packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Router({self.name!r}, routes={sorted(self._routes)})"
