"""Packet forwarding elements: the emulated home router, switch and WAN core.

The paper's findings are entirely driven by the *shaped access link*; every
other hop in their testbed (the campus network, the VCA provider's data
centre) is effectively unconstrained.  The :class:`Router` therefore supports
two kinds of forwarding entries:

* a **link route**, which hands the packet to a :class:`~repro.net.link.Link`
  (used for the shaped access / bottleneck links where queueing matters), and
* a **delay route**, which delivers the packet to the next node after a fixed
  propagation delay without serialization or queueing (used for the
  unconstrained WAN path, keeping the event count low so large parameter
  sweeps stay fast).

Delay routes are implemented by :class:`DelayPipe`: because the delay is
fixed, deliveries are FIFO, so the pipe keeps a pending deque and at most one
event in the simulator's heap (re-armed when it fires) instead of scheduling
one closure-carrying event per packet.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import Callable, Optional

from repro.net.link import Link
from repro.net.packet import Packet
from repro.net.simulator import Simulator

__all__ = ["Router", "ForwardingEntry", "DelayPipe", "DelayBus", "SourceRoutedEgress"]


class DelayPipe:
    """Fixed-delay, infinite-capacity FIFO delivery to a receiver callable.

    The emulated unconstrained WAN/LAN hop: packets come out ``delay_s``
    after they went in, in order.  A single in-heap event serves the whole
    pipe; every firing delivers all packets whose time has been reached and
    re-arms for the next pending one.  With ``delay_s == 0`` the pipe
    degenerates to a direct call.

    A packet train entering through :meth:`send_batch` stays one transit
    record end to end: since every packet of the train shares the same
    delivery time, the whole train is handed to ``receiver_batch`` (when the
    downstream hop supports batches) in a single call.
    """

    __slots__ = ("sim", "delay_s", "receiver", "receiver_batch", "_transit", "_pending")

    def __init__(
        self,
        sim: Simulator,
        receiver: Callable[[Packet], None],
        delay_s: float = 0.0,
        receiver_batch: Optional[Callable[[list], None]] = None,
    ) -> None:
        self.sim = sim
        self.receiver = receiver
        self.receiver_batch = receiver_batch
        self.delay_s = float(delay_s)
        #: Pending deliveries: ``(deliver_at, Packet | list[Packet])``.
        self._transit: deque[tuple[float, object]] = deque()
        self._pending = False

    def send(self, packet: Packet) -> None:
        """Accept a packet for delivery ``delay_s`` seconds from now."""
        if self.delay_s <= 0.0:
            self.receiver(packet)
            return
        sim = self.sim
        deliver_at = sim._now + self.delay_s
        self._transit.append((deliver_at, packet))
        if not self._pending:
            self._pending = True
            sim._seq = seq = sim._seq + 1
            heappush(sim._queue, (deliver_at, seq, self._deliver_due))

    def send_batch(self, packets: list) -> None:
        """Accept a packet train for delivery as one transit record."""
        if not packets:
            return
        if packets.__class__ is not list:
            # Transit records distinguish trains from single packets by
            # ``is list``; normalise tuples and other sequences.
            packets = list(packets)
        if self.delay_s <= 0.0:
            if self.receiver_batch is not None:
                self.receiver_batch(packets)
            else:
                receiver = self.receiver
                for packet in packets:
                    receiver(packet)
            return
        sim = self.sim
        deliver_at = sim._now + self.delay_s
        self._transit.append((deliver_at, packets))
        if not self._pending:
            self._pending = True
            sim._seq = seq = sim._seq + 1
            heappush(sim._queue, (deliver_at, seq, self._deliver_due))

    def _deliver_item(self, item) -> None:
        if item.__class__ is list:
            if self.receiver_batch is not None:
                self.receiver_batch(item)
            else:
                receiver = self.receiver
                for packet in item:
                    receiver(packet)
        else:
            self.receiver(item)

    def _deliver_due(self) -> None:
        sim = self.sim
        now = sim._now
        transit = self._transit
        receiver = self.receiver
        item = transit.popleft()[1]
        if item.__class__ is list:
            self._deliver_item(item)
        else:
            receiver(item)
        while transit and transit[0][0] <= now:
            item = transit.popleft()[1]
            if item.__class__ is list:
                self._deliver_item(item)
            else:
                receiver(item)
        if transit:
            sim._seq = seq = sim._seq + 1
            heappush(sim._queue, (transit[0][0], seq, self._deliver_due))
        else:
            self._pending = False


class DelayBus:
    """One-event FIFO delivering ``(callable, item)`` records after a shared delay.

    Several same-delay destinations multiplexed over one transit deque and at
    most one in-heap event.  This is the delivery engine of
    :class:`SourceRoutedEgress`: a media server fanning a frame out to every
    receiver pays one heap event per emission instant instead of one per
    destination pipe, because all its destination paths share the same
    data-centre + WAN delay.
    """

    __slots__ = ("sim", "delay_s", "_transit", "_pending")

    def __init__(self, sim: Simulator, delay_s: float) -> None:
        if delay_s <= 0.0:
            raise ValueError("DelayBus requires a positive delay")
        self.sim = sim
        self.delay_s = float(delay_s)
        #: Pending deliveries: ``(deliver_at, deliver_fn, item)``.
        self._transit: deque[tuple[float, Callable, object]] = deque()
        self._pending = False

    def push(self, deliver_fn: Callable, item) -> None:
        """Schedule ``deliver_fn(item)`` ``delay_s`` seconds from now."""
        sim = self.sim
        deliver_at = sim._now + self.delay_s
        self._transit.append((deliver_at, deliver_fn, item))
        if not self._pending:
            self._pending = True
            sim._seq = seq = sim._seq + 1
            heappush(sim._queue, (deliver_at, seq, self._deliver_due))

    def _deliver_due(self) -> None:
        sim = self.sim
        now = sim._now
        transit = self._transit
        record = transit.popleft()
        record[1](record[2])
        while transit and transit[0][0] <= now:
            record = transit.popleft()
            record[1](record[2])
        if transit:
            sim._seq = seq = sim._seq + 1
            heappush(sim._queue, (transit[0][0], seq, self._deliver_due))
        else:
            self._pending = False


class SourceRoutedEgress:
    """Host egress that resolves the destination at send time.

    The hop-by-hop path of the access topology (egress pipe -> core router ->
    destination pipe) is semantically a fixed total delay for every
    delay-only destination.  This egress looks the destination up once at
    send time and delivers over a single-event :class:`DelayBus` with the
    summed path delay -- identical arrival times and per-flow ordering, half
    the heap events and none of the per-hop dispatch.  Destinations that are
    not registered (e.g. behind a shaped link or another router) fall back to
    the original hop-by-hop path.
    """

    __slots__ = ("bus", "_routes", "_routes_batch", "_fallback", "_fallback_batch")

    def __init__(
        self,
        sim: Simulator,
        delay_s: float,
        fallback: Callable[[Packet], None],
        fallback_batch: Optional[Callable[[list], None]] = None,
    ) -> None:
        self.bus = DelayBus(sim, delay_s)
        self._routes: dict[str, Callable[[Packet], None]] = {}
        self._routes_batch: dict[str, Callable[[list], None]] = {}
        self._fallback = fallback
        self._fallback_batch = fallback_batch

    def add_route(
        self,
        dst: str,
        receiver: Callable[[Packet], None],
        receiver_batch: Optional[Callable[[list], None]] = None,
    ) -> None:
        """Register a destination deliverable at the bus's total path delay."""
        self._routes[dst] = receiver
        if receiver_batch is None:
            def receiver_batch(packets, _receiver=receiver):  # type: ignore[misc]
                for packet in packets:
                    _receiver(packet)

        self._routes_batch[dst] = receiver_batch

    def send(self, packet: Packet) -> None:
        receiver = self._routes.get(packet.dst)
        if receiver is None:
            self._fallback(packet)
        else:
            self.bus.push(receiver, packet)

    def send_batch(self, packets: list) -> None:
        if not packets:
            return
        dst = packets[0].dst
        for packet in packets:
            if packet.dst != dst:
                # Mixed-destination train (not produced by the media path).
                for item in packets:
                    self.send(item)
                return
        receiver_batch = self._routes_batch.get(dst)
        if receiver_batch is None:
            if self._fallback_batch is not None:
                self._fallback_batch(packets)
            else:
                fallback = self._fallback
                for packet in packets:
                    fallback(packet)
            return
        if packets.__class__ is not list:
            packets = list(packets)
        self.bus.push(receiver_batch, packets)


class ForwardingEntry:
    """One routing-table entry: either a link hop or a pure-delay hop."""

    __slots__ = ("link", "next_hop", "delay_s", "_pipe")

    def __init__(
        self,
        link: Optional[Link] = None,
        next_hop: Optional[Callable[[Packet], None]] = None,
        delay_s: float = 0.0,
        sim: Optional[Simulator] = None,
        next_hop_batch: Optional[Callable[[list], None]] = None,
    ) -> None:
        self.link = link
        self.next_hop = next_hop
        self.delay_s = delay_s
        self._pipe: Optional[DelayPipe] = None
        if link is None and next_hop is not None and delay_s > 0 and sim is not None:
            self._pipe = DelayPipe(sim, next_hop, delay_s, receiver_batch=next_hop_batch)

    def forward(self, sim: Simulator, packet: Packet) -> None:
        if self.link is not None:
            self.link.send(packet)
            return
        pipe = self._pipe
        if pipe is not None:
            pipe.send(packet)
            return
        assert self.next_hop is not None
        if self.delay_s > 0:
            # Entry built without a simulator reference: fall back to a
            # one-off event (rare; only hand-constructed entries hit this).
            sim.schedule(self.delay_s, lambda p=packet: self.next_hop(p))  # type: ignore[misc]
        else:
            self.next_hop(packet)


class Router:
    """A forwarding element with a destination-keyed routing table.

    The routing table is kept twice: ``_routes`` holds the descriptive
    :class:`ForwardingEntry` objects, and ``_dispatch`` maps each destination
    straight to the callable that moves the packet (``link.send``,
    ``pipe.send`` or the receiver itself), so the per-packet path is a dict
    lookup plus one call with no intermediate dispatch frames.
    """

    __slots__ = (
        "sim",
        "name",
        "_routes",
        "_dispatch",
        "_dispatch_batch",
        "_default",
        "_default_dispatch",
        "_default_dispatch_batch",
        "packets_forwarded",
    )

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self._routes: dict[str, ForwardingEntry] = {}
        self._dispatch: dict[str, Callable[[Packet], None]] = {}
        self._dispatch_batch: dict[str, Callable[[list], None]] = {}
        self._default: Optional[ForwardingEntry] = None
        self._default_dispatch: Optional[Callable[[Packet], None]] = None
        self._default_dispatch_batch: Optional[Callable[[list], None]] = None
        self.packets_forwarded = 0

    # ----------------------------------------------------------- config
    @staticmethod
    def _entry_dispatch(entry: ForwardingEntry) -> Callable[[Packet], None]:
        if entry.link is not None:
            return entry.link.send
        if entry._pipe is not None:
            return entry._pipe.send
        assert entry.next_hop is not None
        return entry.next_hop

    @staticmethod
    def _entry_dispatch_batch(
        entry: ForwardingEntry, receiver_batch: Optional[Callable[[list], None]] = None
    ) -> Optional[Callable[[list], None]]:
        if entry.link is not None:
            return entry.link.send_batch
        if entry._pipe is not None:
            return entry._pipe.send_batch
        return receiver_batch

    def add_link_route(self, dst: str, link: Link) -> None:
        """Route packets destined to ``dst`` onto ``link``."""
        entry = ForwardingEntry(link=link)
        self._routes[dst] = entry
        self._dispatch[dst] = self._entry_dispatch(entry)
        self._dispatch_batch[dst] = link.send_batch

    def add_delay_route(
        self,
        dst: str,
        receiver: Callable[[Packet], None],
        delay_s: float = 0.0,
        receiver_batch: Optional[Callable[[list], None]] = None,
    ) -> None:
        """Route packets destined to ``dst`` straight to ``receiver`` after a delay."""
        entry = ForwardingEntry(
            next_hop=receiver, delay_s=delay_s, sim=self.sim, next_hop_batch=receiver_batch
        )
        self._routes[dst] = entry
        self._dispatch[dst] = self._entry_dispatch(entry)
        batch = self._entry_dispatch_batch(entry, receiver_batch)
        if batch is not None:
            self._dispatch_batch[dst] = batch

    def set_default_link(self, link: Link) -> None:
        """Default route over a link (e.g. 'everything else goes upstream')."""
        self._default = ForwardingEntry(link=link)
        self._default_dispatch = self._entry_dispatch(self._default)
        self._default_dispatch_batch = link.send_batch

    def set_default_delay_route(
        self,
        receiver: Callable[[Packet], None],
        delay_s: float = 0.0,
        receiver_batch: Optional[Callable[[list], None]] = None,
    ) -> None:
        """Default route delivered after a fixed delay."""
        self._default = ForwardingEntry(
            next_hop=receiver, delay_s=delay_s, sim=self.sim, next_hop_batch=receiver_batch
        )
        self._default_dispatch = self._entry_dispatch(self._default)
        self._default_dispatch_batch = self._entry_dispatch_batch(self._default, receiver_batch)

    # --------------------------------------------------------- data path
    def receive(self, packet: Packet) -> None:
        """Forward a packet according to the routing table."""
        handler = self._dispatch.get(packet.dst, self._default_dispatch)
        if handler is None:
            raise RuntimeError(
                f"router {self.name!r} has no route for destination {packet.dst!r}"
            )
        self.packets_forwarded += 1
        handler(packet)

    def receive_batch(self, packets: list) -> None:
        """Forward a packet train (single destination per train) in one call.

        Trains produced by the media pipeline are single-destination by
        construction; a mixed train is split into per-destination runs so
        behaviour matches per-packet forwarding exactly.
        """
        if not packets:
            return
        dst = packets[0].dst
        for packet in packets[1:]:
            if packet.dst != dst:
                # Mixed train (not produced by the media path): fall back.
                for item in packets:
                    self.receive(item)
                return
        self.packets_forwarded += len(packets)
        handler = self._dispatch_batch.get(dst)
        if handler is not None:
            handler(packets)
            return
        single = self._dispatch.get(dst)
        if single is None:
            if self._default_dispatch_batch is not None:
                self._default_dispatch_batch(packets)
                return
            single = self._default_dispatch
            if single is None:
                raise RuntimeError(
                    f"router {self.name!r} has no route for destination {dst!r}"
                )
        for packet in packets:
            single(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Router({self.name!r}, routes={sorted(self._routes)})"
