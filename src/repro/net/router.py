"""Packet forwarding elements: the emulated home router, switch and WAN core.

The paper's findings are entirely driven by the *shaped access link*; every
other hop in their testbed (the campus network, the VCA provider's data
centre) is effectively unconstrained.  The :class:`Router` therefore supports
two kinds of forwarding entries:

* a **link route**, which hands the packet to a :class:`~repro.net.link.Link`
  (used for the shaped access / bottleneck links where queueing matters), and
* a **delay route**, which delivers the packet to the next node after a fixed
  propagation delay without serialization or queueing (used for the
  unconstrained WAN path, keeping the event count low so large parameter
  sweeps stay fast).

Delay routes are implemented by :class:`DelayPipe`: because the delay is
fixed, deliveries are FIFO, so the pipe keeps a pending deque and at most one
event in the simulator's heap (re-armed when it fires) instead of scheduling
one closure-carrying event per packet.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import Callable, Optional

from repro.net.link import Link
from repro.net.packet import Packet
from repro.net.simulator import Simulator

__all__ = ["Router", "ForwardingEntry", "DelayPipe"]


class DelayPipe:
    """Fixed-delay, infinite-capacity FIFO delivery to a receiver callable.

    The emulated unconstrained WAN/LAN hop: packets come out ``delay_s``
    after they went in, in order.  A single in-heap event serves the whole
    pipe; every firing delivers all packets whose time has been reached and
    re-arms for the next pending one.  With ``delay_s == 0`` the pipe
    degenerates to a direct call.
    """

    __slots__ = ("sim", "delay_s", "receiver", "_transit", "_pending")

    def __init__(
        self, sim: Simulator, receiver: Callable[[Packet], None], delay_s: float = 0.0
    ) -> None:
        self.sim = sim
        self.receiver = receiver
        self.delay_s = float(delay_s)
        self._transit: deque[tuple[float, Packet]] = deque()
        self._pending = False

    def send(self, packet: Packet) -> None:
        """Accept a packet for delivery ``delay_s`` seconds from now."""
        if self.delay_s <= 0.0:
            self.receiver(packet)
            return
        sim = self.sim
        deliver_at = sim._now + self.delay_s
        self._transit.append((deliver_at, packet))
        if not self._pending:
            self._pending = True
            sim._seq = seq = sim._seq + 1
            heappush(sim._queue, (deliver_at, seq, self._deliver_due))

    def _deliver_due(self) -> None:
        sim = self.sim
        now = sim._now
        transit = self._transit
        receiver = self.receiver
        receiver(transit.popleft()[1])
        while transit and transit[0][0] <= now:
            receiver(transit.popleft()[1])
        if transit:
            sim._seq = seq = sim._seq + 1
            heappush(sim._queue, (transit[0][0], seq, self._deliver_due))
        else:
            self._pending = False


class ForwardingEntry:
    """One routing-table entry: either a link hop or a pure-delay hop."""

    __slots__ = ("link", "next_hop", "delay_s", "_pipe")

    def __init__(
        self,
        link: Optional[Link] = None,
        next_hop: Optional[Callable[[Packet], None]] = None,
        delay_s: float = 0.0,
        sim: Optional[Simulator] = None,
    ) -> None:
        self.link = link
        self.next_hop = next_hop
        self.delay_s = delay_s
        self._pipe: Optional[DelayPipe] = None
        if link is None and next_hop is not None and delay_s > 0 and sim is not None:
            self._pipe = DelayPipe(sim, next_hop, delay_s)

    def forward(self, sim: Simulator, packet: Packet) -> None:
        if self.link is not None:
            self.link.send(packet)
            return
        pipe = self._pipe
        if pipe is not None:
            pipe.send(packet)
            return
        assert self.next_hop is not None
        if self.delay_s > 0:
            # Entry built without a simulator reference: fall back to a
            # one-off event (rare; only hand-constructed entries hit this).
            sim.schedule(self.delay_s, lambda p=packet: self.next_hop(p))  # type: ignore[misc]
        else:
            self.next_hop(packet)


class Router:
    """A forwarding element with a destination-keyed routing table.

    The routing table is kept twice: ``_routes`` holds the descriptive
    :class:`ForwardingEntry` objects, and ``_dispatch`` maps each destination
    straight to the callable that moves the packet (``link.send``,
    ``pipe.send`` or the receiver itself), so the per-packet path is a dict
    lookup plus one call with no intermediate dispatch frames.
    """

    __slots__ = ("sim", "name", "_routes", "_dispatch", "_default", "_default_dispatch", "packets_forwarded")

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self._routes: dict[str, ForwardingEntry] = {}
        self._dispatch: dict[str, Callable[[Packet], None]] = {}
        self._default: Optional[ForwardingEntry] = None
        self._default_dispatch: Optional[Callable[[Packet], None]] = None
        self.packets_forwarded = 0

    # ----------------------------------------------------------- config
    @staticmethod
    def _entry_dispatch(entry: ForwardingEntry) -> Callable[[Packet], None]:
        if entry.link is not None:
            return entry.link.send
        if entry._pipe is not None:
            return entry._pipe.send
        assert entry.next_hop is not None
        return entry.next_hop

    def add_link_route(self, dst: str, link: Link) -> None:
        """Route packets destined to ``dst`` onto ``link``."""
        entry = ForwardingEntry(link=link)
        self._routes[dst] = entry
        self._dispatch[dst] = self._entry_dispatch(entry)

    def add_delay_route(
        self, dst: str, receiver: Callable[[Packet], None], delay_s: float = 0.0
    ) -> None:
        """Route packets destined to ``dst`` straight to ``receiver`` after a delay."""
        entry = ForwardingEntry(next_hop=receiver, delay_s=delay_s, sim=self.sim)
        self._routes[dst] = entry
        self._dispatch[dst] = self._entry_dispatch(entry)

    def set_default_link(self, link: Link) -> None:
        """Default route over a link (e.g. 'everything else goes upstream')."""
        self._default = ForwardingEntry(link=link)
        self._default_dispatch = self._entry_dispatch(self._default)

    def set_default_delay_route(
        self, receiver: Callable[[Packet], None], delay_s: float = 0.0
    ) -> None:
        """Default route delivered after a fixed delay."""
        self._default = ForwardingEntry(next_hop=receiver, delay_s=delay_s, sim=self.sim)
        self._default_dispatch = self._entry_dispatch(self._default)

    # --------------------------------------------------------- data path
    def receive(self, packet: Packet) -> None:
        """Forward a packet according to the routing table."""
        handler = self._dispatch.get(packet.dst, self._default_dispatch)
        if handler is None:
            raise RuntimeError(
                f"router {self.name!r} has no route for destination {packet.dst!r}"
            )
        self.packets_forwarded += 1
        handler(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Router({self.name!r}, routes={sorted(self._routes)})"
