"""Discrete-event simulation engine.

The engine is deliberately small: a binary-heap event queue keyed on
``(time, sequence)`` plus a handful of convenience helpers.  Every other
component in the emulator (links, congestion controllers, encoders, the
experiment orchestrator) schedules callbacks on a shared :class:`Simulator`
instance.

The paper's experiments are wall-clock driven (2.5-minute calls, 30-second
disruptions, competing flows that start 30 seconds into a call); the
simulator's :meth:`Simulator.run` mirrors that by executing events until a
target time is reached.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

__all__ = ["Simulator", "ScheduledEvent", "PeriodicTask"]


@dataclass(order=True)
class ScheduledEvent:
    """A single callback scheduled at an absolute simulation time.

    Events compare on ``(time, seq)`` so that simultaneous events execute in
    the order they were scheduled, which keeps runs deterministic.
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when it is popped."""
        self.cancelled = True


class Simulator:
    """Event scheduler and simulation clock.

    Parameters
    ----------
    seed:
        Seed for the simulator-owned random number generator.  All stochastic
        components (loss processes, encoder variability, start-time jitter)
        draw from :attr:`rng` so a run is fully reproducible from its seed.
    """

    def __init__(self, seed: int = 0) -> None:
        self._queue: list[ScheduledEvent] = []
        self._counter = itertools.count()
        self._now = 0.0
        self.rng = np.random.default_rng(seed)
        self.seed = seed
        self._event_count = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (useful for ablation benches)."""
        return self._event_count

    def schedule(self, delay: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Negative delays are clamped to zero: a component may legitimately
        compute a "time until the next frame" that is a hair below zero due
        to floating point arithmetic.
        """
        return self.schedule_at(self._now + max(delay, 0.0), callback)

    def schedule_at(self, when: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` at absolute simulation time ``when``."""
        if when < self._now:
            when = self._now
        event = ScheduledEvent(time=when, seq=next(self._counter), callback=callback)
        heapq.heappush(self._queue, event)
        return event

    def run(self, until: float) -> None:
        """Execute events in time order until the clock reaches ``until``.

        The clock is always advanced to ``until`` at the end of the call even
        if the queue drains earlier, so periodic samplers that stop early do
        not distort duration-normalised metrics.
        """
        while self._queue and self._queue[0].time <= until:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._event_count += 1
            event.callback()
        self._now = max(self._now, until)

    def run_all(self, limit: float = float("inf")) -> None:
        """Run until the event queue is empty or the clock passes ``limit``."""
        while self._queue:
            if self._queue[0].time > limit:
                break
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._event_count += 1
            event.callback()

    def every(
        self,
        interval: float,
        callback: Callable[[], None],
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> "PeriodicTask":
        """Run ``callback`` every ``interval`` seconds.

        Returns a :class:`PeriodicTask` handle whose :meth:`PeriodicTask.stop`
        cancels future invocations.  ``start`` defaults to one interval from
        now; ``end`` (if given) is the last time at which the callback may
        fire.
        """
        task = PeriodicTask(self, interval, callback, end=end)
        first = self._now + interval if start is None else start
        task._arm(first)
        return task


class PeriodicTask:
    """Handle for a repeating event created by :meth:`Simulator.every`."""

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[], None],
        end: Optional[float] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("periodic interval must be positive")
        self._sim = sim
        self._interval = interval
        self._callback = callback
        self._end = end
        self._stopped = False
        self._pending: Optional[ScheduledEvent] = None

    def _arm(self, when: float) -> None:
        if self._stopped:
            return
        if self._end is not None and when > self._end:
            return
        self._pending = self._sim.schedule_at(when, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        self._callback()
        self._arm(self._sim.now + self._interval)

    def stop(self) -> None:
        """Cancel all future invocations."""
        self._stopped = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
