"""Discrete-event simulation engine.

The engine is deliberately small: a binary-heap event queue keyed on
``(time, sequence)`` plus a handful of convenience helpers.  Every other
component in the emulator (links, congestion controllers, encoders, the
experiment orchestrator) schedules callbacks on a shared :class:`Simulator`
instance.

The paper's experiments are wall-clock driven (2.5-minute calls, 30-second
disruptions, competing flows that start 30 seconds into a call); the
simulator's :meth:`Simulator.run` mirrors that by executing events until a
target time is reached.

Fast path
---------

The heap holds plain ``(time, seq, callback)`` tuples, so ordering is
resolved by C-level tuple comparison instead of a generated dataclass
``__lt__``, and scheduling allocates nothing beyond the tuple itself.
Cancellation is a *tombstone*: cancelling adds the event's sequence number
to a set the run loop consults when the entry is popped.  Hot paths that
never cancel (per-packet link events, delay pipes) use :meth:`Simulator.call_at`
/ :meth:`Simulator.call_in`, which skip the handle allocation entirely;
:meth:`Simulator.schedule` keeps the handle-returning API for callers that
need :meth:`ScheduledEvent.cancel`.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

import numpy as np

__all__ = ["Simulator", "ScheduledEvent", "PeriodicTask"]


class ScheduledEvent:
    """Cancellable handle for a callback scheduled at an absolute time.

    Events compare on ``(time, seq)`` inside the simulator's heap so that
    simultaneous events execute in the order they were scheduled, which
    keeps runs deterministic.  The handle itself only carries what
    :meth:`cancel` needs.
    """

    __slots__ = ("_sim", "seq", "time", "cancelled")

    def __init__(self, sim: "Simulator", seq: int, time: float) -> None:
        self._sim = sim
        self.seq = seq
        self.time = time
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when it is popped."""
        if not self.cancelled:
            self.cancelled = True
            self._sim._tombstones.add(self.seq)


class Simulator:
    """Event scheduler and simulation clock.

    Parameters
    ----------
    seed:
        Seed for the simulator-owned random number generator.  All stochastic
        components (loss processes, encoder variability, start-time jitter)
        draw from :attr:`rng` so a run is fully reproducible from its seed.
    """

    __slots__ = ("_queue", "_tombstones", "_seq", "_now", "rng", "seed", "_event_count")

    def __init__(self, seed: int = 0) -> None:
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._tombstones: set[int] = set()
        self._seq = 0
        self._now = 0.0
        self.rng = np.random.default_rng(seed)
        self.seed = seed
        self._event_count = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (useful for ablation benches)."""
        return self._event_count

    @property
    def pending_events(self) -> int:
        """Number of events currently in the queue (including tombstoned)."""
        return len(self._queue)

    # ------------------------------------------------------------ fast path
    def call_at(self, when: float, callback: Callable[[], None]) -> int:
        """Schedule ``callback`` at absolute time ``when`` without a handle.

        Returns the event's sequence number, which :meth:`cancel_seq` accepts;
        callers that never cancel can ignore it.  This is the hot-path
        scheduling primitive: no :class:`ScheduledEvent` is allocated.
        """
        if when < self._now:
            when = self._now
        self._seq = seq = self._seq + 1
        heapq.heappush(self._queue, (when, seq, callback))
        return seq

    def call_in(self, delay: float, callback: Callable[[], None]) -> int:
        """Schedule ``callback`` ``delay`` seconds from now without a handle."""
        now = self._now
        self._seq = seq = self._seq + 1
        heapq.heappush(
            self._queue, (now + delay if delay > 0.0 else now, seq, callback)
        )
        return seq

    def cancel_seq(self, seq: int) -> None:
        """Cancel an event by the sequence number ``call_at``/``call_in`` returned."""
        self._tombstones.add(seq)

    # ------------------------------------------------------------ public API
    def schedule(self, delay: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Negative delays are clamped to zero: a component may legitimately
        compute a "time until the next frame" that is a hair below zero due
        to floating point arithmetic.
        """
        return self.schedule_at(self._now + max(delay, 0.0), callback)

    def schedule_at(self, when: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` at absolute simulation time ``when``."""
        if when < self._now:
            when = self._now
        seq = self.call_at(when, callback)
        return ScheduledEvent(self, seq, when)

    def run(self, until: float) -> None:
        """Execute events in time order until the clock reaches ``until``.

        The clock is always advanced to ``until`` at the end of the call even
        if the queue drains earlier, so periodic samplers that stop early do
        not distort duration-normalised metrics.
        """
        self._drain(until)
        if self._now < until:
            self._now = until

    def run_all(self, limit: float = float("inf")) -> None:
        """Run until the event queue is empty or the clock passes ``limit``."""
        self._drain(limit)

    def _drain(self, bound: float) -> None:
        """The dispatch loop shared by :meth:`run` and :meth:`run_all`."""
        queue = self._queue
        tombstones = self._tombstones
        pop = heapq.heappop
        push = heapq.heappush
        count = self._event_count
        try:
            while queue:
                entry = pop(queue)
                if entry[0] > bound:
                    push(queue, entry)
                    break
                if tombstones and entry[1] in tombstones:
                    tombstones.discard(entry[1])
                    continue
                self._now = entry[0]
                count += 1
                entry[2]()
        finally:
            self._event_count = count
        if not queue and tombstones:
            # Any remaining tombstone belongs to an event that already fired
            # (cancel-after-fire); once the queue is empty none of them can
            # ever be popped, so drop them instead of leaking.
            tombstones.clear()

    def every(
        self,
        interval: float,
        callback: Callable[[], None],
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> "PeriodicTask":
        """Run ``callback`` every ``interval`` seconds.

        Returns a :class:`PeriodicTask` handle whose :meth:`PeriodicTask.stop`
        cancels future invocations.  ``start`` defaults to one interval from
        now; ``end`` (if given) is the last time at which the callback may
        fire.
        """
        task = PeriodicTask(self, interval, callback, end=end)
        first = self._now + interval if start is None else start
        task._anchor = first
        task._arm(first)
        return task


class PeriodicTask:
    """Handle for a repeating event created by :meth:`Simulator.every`.

    Firing times are anchored to the absolute start time: the ``n``-th
    invocation runs at ``start + n * interval`` rather than ``previous +
    interval``, so long campaigns do not accumulate floating-point drift in
    RTCP/meter cadence (a 2.5-minute call at 4 Hz accumulates hundreds of
    additions; the anchored form keeps every firing within one rounding of
    the ideal grid).
    """

    __slots__ = (
        "_sim",
        "_interval",
        "_callback",
        "_end",
        "_stopped",
        "_pending_seq",
        "_anchor",
        "_count",
    )

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[], None],
        end: Optional[float] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("periodic interval must be positive")
        self._sim = sim
        self._interval = interval
        self._callback = callback
        self._end = end
        self._stopped = False
        self._pending_seq: Optional[int] = None
        #: First firing time; subsequent firings land on ``_anchor + n * interval``.
        self._anchor: float = 0.0
        self._count = 0

    def _arm(self, when: float) -> None:
        if self._stopped:
            return
        if self._end is not None and when > self._end:
            return
        self._pending_seq = self._sim.call_at(when, self._fire)

    def _fire(self) -> None:
        self._pending_seq = None
        if self._stopped:
            return
        self._callback()
        self._count = count = self._count + 1
        self._arm(self._anchor + count * self._interval)

    def stop(self) -> None:
        """Cancel all future invocations."""
        self._stopped = True
        if self._pending_seq is not None:
            self._sim.cancel_seq(self._pending_seq)
            self._pending_seq = None
