"""Packet record used throughout the emulator.

A :class:`Packet` is intentionally closer to what a passive capture (pcap)
would record than to a full protocol implementation: the measurement study
only ever looks at packet sizes, directions, timestamps and the flow they
belong to.  Media- and transport-specific metadata (RTP sequence numbers,
frame identifiers, TCP sequence numbers, FEC group membership) travels in
typed fields so the capture/analysis layer can compute the same statistics
the paper derives from traffic captures and WebRTC stats.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional

__all__ = ["Packet", "PacketKind", "RTP_HEADER_BYTES", "UDP_IP_HEADER_BYTES", "TCP_IP_HEADER_BYTES"]

#: Bytes of RTP header carried by every media packet (12-byte RTP header plus
#: the extensions VCAs commonly negotiate, e.g. transport-wide sequence
#: numbers and audio level).
RTP_HEADER_BYTES = 20

#: IPv4 + UDP header overhead.
UDP_IP_HEADER_BYTES = 28

#: IPv4 + TCP header overhead (no options).
TCP_IP_HEADER_BYTES = 40

_packet_ids = itertools.count()


class PacketKind(str, Enum):
    """Coarse classification of emulated packets.

    The classification mirrors how the paper's analysis splits captured
    traffic: RTP media (audio vs video), RTCP control traffic, FEC repair
    data, and bulk TCP/QUIC traffic from competing applications.
    """

    RTP_VIDEO = "rtp_video"
    RTP_AUDIO = "rtp_audio"
    RTCP = "rtcp"
    FEC = "fec"
    SIGNALING = "signaling"
    TCP_DATA = "tcp_data"
    TCP_ACK = "tcp_ack"
    QUIC_DATA = "quic_data"
    QUIC_ACK = "quic_ack"


@dataclass
class Packet:
    """A single packet traversing the emulated network.

    Attributes
    ----------
    size_bytes:
        On-the-wire size including transport/IP headers; this is the number
        every utilization metric in the paper is computed from.
    flow_id:
        Identifier of the application flow the packet belongs to, e.g.
        ``"zoom-c1-video-up"`` or ``"iperf-f1"``.  The capture layer groups
        bitrate time series by flow id.
    src / dst:
        Names of the sending and receiving hosts.
    kind:
        A :class:`PacketKind` value.
    seq:
        Transport-level sequence number (RTP sequence or TCP segment index).
    created_at:
        Simulation time at which the sender handed the packet to the network.
    meta:
        Free-form per-packet metadata (frame id, simulcast layer, SVC layer,
        FEC group, TCP byte range ...).
    """

    size_bytes: int
    flow_id: str
    src: str
    dst: str
    kind: PacketKind = PacketKind.RTP_VIDEO
    seq: int = 0
    created_at: float = 0.0
    meta: dict[str, Any] = field(default_factory=dict)
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    #: Time the packet was enqueued on the most recent link (set by Link).
    enqueued_at: Optional[float] = None
    #: Cumulative queueing delay experienced so far along the path.
    queueing_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {self.size_bytes}")

    @property
    def size_bits(self) -> int:
        """Size in bits, used for serialization-time computation."""
        return self.size_bytes * 8

    def copy_for_forwarding(self, *, src: str, dst: str, flow_id: Optional[str] = None) -> "Packet":
        """Clone the packet as a relay/SFU would when forwarding it.

        The clone keeps the media metadata (frame ids, layers, sequence
        numbers) but gets fresh addressing and, optionally, a new flow id so
        upstream and downstream legs can be measured independently -- exactly
        how the paper distinguishes C2's sent traffic from C1's received
        traffic when diagnosing relay-added FEC.
        """
        return Packet(
            size_bytes=self.size_bytes,
            flow_id=flow_id if flow_id is not None else self.flow_id,
            src=src,
            dst=dst,
            kind=self.kind,
            seq=self.seq,
            created_at=self.created_at,
            meta=dict(self.meta),
        )
