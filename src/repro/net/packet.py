"""Packet record used throughout the emulator.

A :class:`Packet` is intentionally closer to what a passive capture (pcap)
would record than to a full protocol implementation: the measurement study
only ever looks at packet sizes, directions, timestamps and the flow they
belong to.  Media- and transport-specific metadata (RTP sequence numbers,
frame identifiers, TCP sequence numbers, FEC group membership) travels in
typed fields so the capture/analysis layer can compute the same statistics
the paper derives from traffic captures and WebRTC stats.

Packets are the single most-allocated object in a run (hundreds of thousands
per emulated call), so the class is slotted, the ``meta`` dict is allocated
lazily on first access (control packets such as audio, probes and thinned
forwards never touch it), and :class:`PacketKind` is an ``IntEnum`` so the
capture path dispatches on cheap int hashing/comparison rather than string
hashing.
"""

from __future__ import annotations

import itertools
from enum import IntEnum
from typing import Any, Optional

__all__ = ["Packet", "PacketKind", "RTP_HEADER_BYTES", "UDP_IP_HEADER_BYTES", "TCP_IP_HEADER_BYTES"]

#: Bytes of RTP header carried by every media packet (12-byte RTP header plus
#: the extensions VCAs commonly negotiate, e.g. transport-wide sequence
#: numbers and audio level).
RTP_HEADER_BYTES = 20

#: IPv4 + UDP header overhead.
UDP_IP_HEADER_BYTES = 28

#: IPv4 + TCP header overhead (no options).
TCP_IP_HEADER_BYTES = 40

_packet_ids = itertools.count()


class PacketKind(IntEnum):
    """Coarse classification of emulated packets.

    The classification mirrors how the paper's analysis splits captured
    traffic: RTP media (audio vs video), RTCP control traffic, FEC repair
    data, and bulk TCP/QUIC traffic from competing applications.
    """

    RTP_VIDEO = 0
    RTP_AUDIO = 1
    RTCP = 2
    FEC = 3
    SIGNALING = 4
    TCP_DATA = 5
    TCP_ACK = 6
    QUIC_DATA = 7
    QUIC_ACK = 8

    @property
    def label(self) -> str:
        """Human-readable name as it appears in analysis output."""
        return self.name.lower()


class Packet:
    """A single packet traversing the emulated network.

    Attributes
    ----------
    size_bytes:
        On-the-wire size including transport/IP headers; this is the number
        every utilization metric in the paper is computed from.
    flow_id:
        Identifier of the application flow the packet belongs to, e.g.
        ``"zoom-c1-video-up"`` or ``"iperf-f1"``.  The capture layer groups
        bitrate time series by flow id.
    src / dst:
        Names of the sending and receiving hosts.
    kind:
        A :class:`PacketKind` value.
    seq:
        Transport-level sequence number (RTP sequence or TCP segment index).
    created_at:
        Simulation time at which the sender handed the packet to the network.
    meta:
        Free-form per-packet metadata (frame id, simulcast layer, SVC layer,
        FEC group, TCP byte range ...).  Allocated lazily on first access.
        Metadata is written once when the packet is built and treated as
        immutable from then on; forwarded clones therefore *share* the dict
        rather than copying it (an SFU fans every media packet out to every
        receiver, so the copy was the single hottest allocation in a call).
    """

    __slots__ = (
        "size_bytes",
        "flow_id",
        "src",
        "dst",
        "kind",
        "seq",
        "created_at",
        "_meta",
        "_packet_id",
        "enqueued_at",
        "queueing_delay",
    )

    def __init__(
        self,
        size_bytes: int,
        flow_id: str,
        src: str,
        dst: str,
        kind: PacketKind = PacketKind.RTP_VIDEO,
        seq: int = 0,
        created_at: float = 0.0,
        meta: Optional[dict[str, Any]] = None,
        packet_id: Optional[int] = None,
        enqueued_at: Optional[float] = None,
        queueing_delay: float = 0.0,
    ) -> None:
        if size_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {size_bytes}")
        self.size_bytes = size_bytes
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.kind = kind
        self.seq = seq
        self.created_at = created_at
        self._meta = meta
        self._packet_id = packet_id
        #: Time the packet was enqueued on the most recent link (set by Link).
        self.enqueued_at = enqueued_at
        #: Cumulative queueing delay experienced so far along the path.
        self.queueing_delay = queueing_delay

    @property
    def meta(self) -> dict[str, Any]:
        """Per-packet metadata dict, allocated on first access."""
        m = self._meta
        if m is None:
            m = self._meta = {}
        return m

    @meta.setter
    def meta(self, value: Optional[dict[str, Any]]) -> None:
        self._meta = value

    @property
    def packet_id(self) -> int:
        """Globally unique packet identifier, drawn lazily on first access."""
        pid = self._packet_id
        if pid is None:
            pid = self._packet_id = next(_packet_ids)
        return pid

    @packet_id.setter
    def packet_id(self, value: Optional[int]) -> None:
        self._packet_id = value

    @property
    def size_bits(self) -> int:
        """Size in bits, used for serialization-time computation."""
        return self.size_bytes * 8

    def copy_for_forwarding(self, *, src: str, dst: str, flow_id: Optional[str] = None) -> "Packet":
        """Clone the packet as a relay/SFU would when forwarding it.

        The clone keeps the media metadata (frame ids, layers, sequence
        numbers) but gets fresh addressing and, optionally, a new flow id so
        upstream and downstream legs can be measured independently -- exactly
        how the paper distinguishes C2's sent traffic from C1's received
        traffic when diagnosing relay-added FEC.
        """
        # Hand-rolled clone: this runs once per forwarded copy (the single
        # most frequent allocation in an SFU call), so skip __init__'s
        # argument parsing and validation -- the source packet is valid --
        # and share the write-once metadata dict instead of copying it.
        clone: Packet = object.__new__(Packet)
        clone.size_bytes = self.size_bytes
        clone.flow_id = flow_id if flow_id is not None else self.flow_id
        clone.src = src
        clone.dst = dst
        clone.kind = self.kind
        clone.seq = self.seq
        clone.created_at = self.created_at
        clone._meta = self._meta
        clone._packet_id = None
        clone.enqueued_at = None
        clone.queueing_delay = 0.0
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(id={self.packet_id}, {self.kind.label}, {self.size_bytes} B, "
            f"flow={self.flow_id!r}, {self.src}->{self.dst}, seq={self.seq})"
        )
