"""Shaped link model: the emulated equivalent of ``tc`` on the access link.

A :class:`Link` is unidirectional.  It models

* **serialization** at the link's current rate (the rate may be changed at
  any time by a :class:`~repro.net.shaper.LinkShaper`, which is how the
  paper's static shaping levels and 30-second transient drops are applied),
* a **drop-tail queue** bounded in bytes (the router's buffer), optionally
  policed by a CoDel-style AQM (:mod:`repro.netem.aqm`),
* fixed **propagation delay**, optionally perturbed by a per-packet jitter
  policy (:mod:`repro.netem.impairments`), and
* optional **random loss**: the original i.i.d. ``loss_rate`` float or a
  pluggable loss policy (e.g. Gilbert-Elliott burst loss).

All impairment hooks default to ``None``; a link without them is
byte-identical to the pre-netem engine at the same seed, and an
``IidLoss`` policy is unwrapped into the ``loss_rate`` float so the
degenerate case shares that guarantee.

Per-link counters (:class:`LinkStats`) record everything the analysis layer
needs: delivered/dropped packets and bytes, and a time series of queue
occupancy samples used to diagnose bufferbloat-style behaviour in the
competition experiments.

Fast path
---------

Arrivals are FIFO and the propagation delay is fixed, so the whole life of a
packet on the link is computable at arrival time::

    start      = max(arrival, done of predecessor)   # service start
    done       = start + size_bits / current_rate    # serialization complete
    deliver_at = done + delay_s                      # at the sink

which is exactly the cascade the event-per-stage implementation produces,
just evaluated eagerly.  The fast path therefore keeps a pending deque of
``[arrival, start, done, deliver_at, packet]`` records and **one** heap event
per link -- the delivery of the head record -- instead of one serialization
plus one propagation event per packet; every callback is a bound method, so
no closures are allocated on the data path.  Rate changes from the shaper
re-run the cascade over the records whose service has not started yet (the
packet in service keeps its old rate, as in the event-driven version) and
re-arm the delivery event.  Queue occupancy is maintained lazily: a record
occupies the queue from arrival until its service start passes the clock.

Random loss is decided when the delivery event fires rather than at
serialization completion; the per-packet decisions and their order are
unchanged, but the draws interleave differently with other consumers of the
simulator RNG, so seeds produce different (equally valid) loss patterns than
the legacy path on lossy links.

``Link(..., legacy=True)`` preserves the original one-event-per-packet
scheduling (closures included) so equivalence tests and the engine
microbenchmark can compare the two paths on identical seeds.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from heapq import heappush
from typing import Callable, Optional

from repro.net.packet import Packet
from repro.net.simulator import Simulator

__all__ = ["Link", "LinkStats", "DEFAULT_QUEUE_BYTES", "UNSET"]

#: Sentinel for :meth:`Link.configure_impairments`: "keep the current policy"
#: (as opposed to ``None``, which clears it).
UNSET = object()

#: Default queue size.  Roughly 64 KB, i.e. ~1 second of buffering at
#: 0.5 Mbps and ~50 ms at 10 Mbps -- consistent with the small CPE buffers of
#: the paper's Turris Omnia router.
DEFAULT_QUEUE_BYTES = 64_000

# Record field indices of the fast path's pending entries.
_ARRIVAL, _START, _DONE, _DELIVER, _PACKET = range(5)


@dataclass(slots=True)
class LinkStats:
    """Aggregate counters maintained by a :class:`Link`."""

    packets_sent: int = 0
    packets_dropped: int = 0
    packets_lost_random: int = 0
    #: Subset of ``packets_dropped`` decided by the AQM policy (not queue
    #: overflow); zero on drop-tail links.
    packets_dropped_aqm: int = 0
    bytes_sent: int = 0
    bytes_dropped: int = 0
    queue_samples: list[tuple[float, int]] = field(default_factory=list)

    @property
    def drop_rate(self) -> float:
        """Fraction of offered packets dropped at the queue."""
        offered = self.packets_sent + self.packets_dropped
        if offered == 0:
            return 0.0
        return self.packets_dropped / offered

    @property
    def tx_loss_rate(self) -> float:
        """Fraction of offered packets that never reached the sink.

        Counts both queue/AQM drops and random/impairment losses -- the
        tx-side loss a sender's traffic experienced on this link.
        """
        offered = self.packets_sent + self.packets_dropped
        if offered == 0:
            return 0.0
        return (self.packets_dropped + self.packets_lost_random) / offered


class Link:
    """A unidirectional, rate-limited, lossy link with a drop-tail queue.

    Parameters
    ----------
    sim:
        The shared simulator.
    name:
        Human-readable identifier, e.g. ``"c1-uplink"``.
    rate_bps:
        Initial capacity in bits per second.
    delay_s:
        One-way propagation delay in seconds.
    queue_bytes:
        Buffer size of the drop-tail queue.
    loss_rate:
        Independent random loss probability applied to packets that survive
        the queue (models residual last-mile loss; zero by default because
        the paper's testbed used wired links).
    legacy:
        Use the original per-packet event scheduling instead of the
        single-event fast path (for equivalence tests and benchmarks only).
    """

    __slots__ = (
        "sim",
        "name",
        "_rate_bps",
        "delay_s",
        "queue_bytes",
        "loss_rate",
        "stats",
        "_queue",
        "_queued_bytes",
        "_busy",
        "_sink",
        "on_drop",
        "legacy",
        "_pending",
        "_waiting",
        "_delivery_seq",
        "loss_model",
        "jitter_model",
        "aqm",
        "_jitter_horizon",
    )

    def __init__(
        self,
        sim: Simulator,
        name: str,
        rate_bps: float,
        delay_s: float = 0.005,
        queue_bytes: int = DEFAULT_QUEUE_BYTES,
        loss_rate: float = 0.0,
        legacy: bool = False,
        loss_model=None,
        jitter_model=None,
        aqm=None,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError("link rate must be positive")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        self.sim = sim
        self.name = name
        self._rate_bps = float(rate_bps)
        self.delay_s = float(delay_s)
        self.queue_bytes = int(queue_bytes)
        self.loss_rate = float(loss_rate)
        self.stats = LinkStats()
        self.legacy = bool(legacy)
        #: Impairment policies (see :mod:`repro.netem`); all off by default.
        if loss_model is not None and loss_rate > 0.0:
            # At construction the two loss configurations are ambiguous;
            # reconfiguration later replaces whatever is installed.
            raise ValueError("pass either loss_rate or a loss_model, not both")
        self.loss_model = None
        self.jitter_model = None
        self.aqm = None
        #: Monotonic floor on jittered delivery times (no reordering).
        self._jitter_horizon = 0.0
        self.configure_impairments(
            loss_model=loss_model if loss_model is not None else UNSET,
            jitter_model=jitter_model if jitter_model is not None else UNSET,
            aqm=aqm if aqm is not None else UNSET,
        )

        #: Legacy-mode drop-tail queue (fast mode uses ``_pending``).
        self._queue: deque[Packet] = deque()
        self._queued_bytes = 0
        self._busy = False
        self._sink: Optional[Callable[[Packet], None]] = None
        #: Fast path: per-packet ``[arrival, start, done, deliver_at, packet]``.
        self._pending: deque[list] = deque()
        #: Fast path: ``(service_start, size)`` of records still in the queue.
        self._waiting: deque[tuple[float, int]] = deque()
        #: Sequence number of the armed delivery event (None when idle).
        self._delivery_seq: Optional[int] = None
        #: Called with a dropped packet; congestion controllers of locally
        #: originated traffic (e.g. a sender's own uplink) may subscribe to
        #: model immediate local loss detection, but by default losses are
        #: only observed end-to-end.
        self.on_drop: Optional[Callable[[Packet], None]] = None

    # ------------------------------------------------------------------ API
    def configure_impairments(self, loss_model=UNSET, jitter_model=UNSET, aqm=UNSET) -> None:
        """Install, replace, or clear the link's impairment policies.

        Each argument left unset keeps the current policy; passing ``None``
        clears it, passing a policy replaces it.  A ``loss_model`` replaces
        the link's *whole* loss configuration (including any previously set
        ``loss_rate``): an :class:`~repro.netem.impairments.IidLoss` unwraps
        into the ``loss_rate`` float fast path, so the degenerate policy is
        byte-identical to the pre-netem engine at the same seed, any other
        model zeroes the float, and ``None`` clears both.
        """
        if loss_model is not UNSET:
            if loss_model is None:
                self.loss_model = None
                self.loss_rate = 0.0
            else:
                iid_rate = getattr(loss_model, "iid_rate", None)
                if iid_rate is not None:
                    # Degenerate case: one rng.random() draw per delivered
                    # packet (none at rate zero), exactly the float behaviour.
                    self.loss_rate = float(iid_rate)
                    self.loss_model = None
                else:
                    self.loss_rate = 0.0
                    self.loss_model = loss_model
        if jitter_model is not UNSET:
            self.jitter_model = jitter_model
        if aqm is not UNSET:
            self.aqm = aqm

    @property
    def rate_bps(self) -> float:
        """Current capacity in bits per second."""
        return self._rate_bps

    def set_rate(self, rate_bps: float) -> None:
        """Change the link capacity (the emulated ``tc class change``).

        On the fast path the serialization cascade of every not-yet-started
        packet is recomputed at the new rate (the packet in service keeps the
        rate it started with, matching the event-driven behaviour) and the
        delivery event is re-armed.
        """
        if rate_bps <= 0:
            raise ValueError("link rate must be positive")
        if float(rate_bps) == self._rate_bps:
            return
        self._rate_bps = float(rate_bps)
        if self.legacy or not self._pending:
            return
        sim = self.sim
        now = sim._now
        rate = self._rate_bps
        delay = self.delay_s
        prev_done: Optional[float] = None
        waiting: deque[tuple[float, int]] = deque()
        changed = False
        for record in self._pending:
            if record[_START] <= now and not changed:
                # Already in (or past) service: keep its schedule.
                prev_done = record[_DONE]
                continue
            start = record[_ARRIVAL] if prev_done is None or prev_done < record[_ARRIVAL] else prev_done
            size = record[_PACKET].size_bytes
            record[_START] = start
            record[_DONE] = done = start + size * 8 / rate
            record[_DELIVER] = done + delay
            prev_done = done
            changed = True
            if start > now:
                waiting.append((start, size))
        if not changed:
            return
        # Queue-occupancy bookkeeping follows the recomputed service starts.
        self._waiting = waiting
        self._queued_bytes = sum(size for _, size in waiting)
        if self._delivery_seq is not None:
            sim.cancel_seq(self._delivery_seq)
        sim._seq = seq = sim._seq + 1
        self._delivery_seq = seq
        heappush(sim._queue, (self._pending[0][_DELIVER], seq, self._deliver_due))

    def connect(self, sink: Callable[[Packet], None]) -> None:
        """Attach the downstream consumer (next link hop or receiving host)."""
        self._sink = sink

    # ------------------------------------------------------------ occupancy
    def _advance(self, now: float) -> None:
        """Release queue occupancy of records whose service has started."""
        waiting = self._waiting
        queued = self._queued_bytes
        while waiting and waiting[0][0] <= now:
            queued -= waiting.popleft()[1]
        self._queued_bytes = queued

    @property
    def queued_bytes(self) -> int:
        """Bytes currently waiting in the queue (excludes the packet in service)."""
        if not self.legacy:
            self._advance(self.sim._now)
        return self._queued_bytes

    @property
    def queue_depth(self) -> int:
        """Number of packets currently waiting in the queue."""
        if self.legacy:
            return len(self._queue)
        self._advance(self.sim._now)
        return len(self._waiting)

    def queueing_delay_estimate(self) -> float:
        """Expected delay a newly arriving packet would see from the backlog."""
        return (self.queued_bytes * 8) / self._rate_bps

    # ------------------------------------------------------------ data path
    def send(self, packet: Packet) -> None:
        """Offer ``packet`` to the link.

        The packet is dropped if the queue has no room (drop-tail); otherwise
        it is enqueued and will be serialized at the link's current rate.
        """
        if self._sink is None:
            raise RuntimeError(f"link {self.name!r} has no sink connected")
        sim = self.sim
        now = sim._now
        size = packet.size_bytes
        aqm = self.aqm
        if self.legacy:
            if aqm is not None and aqm.should_drop(
                now, (self._queued_bytes * 8) / self._rate_bps
            ):
                self._drop(packet, size, aqm=True)
                return
            if self._queued_bytes + size > self.queue_bytes:
                self._drop(packet, size)
                return
            packet.enqueued_at = now
            self._queue.append(packet)
            self._queued_bytes += size
            if not self._busy:
                self._serve_next()
            return
        waiting = self._waiting
        queued = self._queued_bytes
        while waiting and waiting[0][0] <= now:
            queued -= waiting.popleft()[1]
        if aqm is not None and aqm.should_drop(now, (queued * 8) / self._rate_bps):
            self._queued_bytes = queued
            self._drop(packet, size, aqm=True)
            return
        if queued + size > self.queue_bytes:
            self._queued_bytes = queued
            self._drop(packet, size)
            return
        packet.enqueued_at = now
        pending = self._pending
        if pending:
            prev_done = pending[-1][_DONE]
            start = prev_done if prev_done > now else now
        else:
            start = now
        done = start + size * 8 / self._rate_bps
        deliver_at = done + self.delay_s
        pending.append([now, start, done, deliver_at, packet])
        if start > now:
            waiting.append((start, size))
            queued += size
        self._queued_bytes = queued
        if self._delivery_seq is None:
            sim._seq = seq = sim._seq + 1
            self._delivery_seq = seq
            heappush(sim._queue, (deliver_at, seq, self._deliver_due))

    def send_batch(self, packets) -> None:
        """Offer a whole packet train to the link in one transaction.

        The serialization cascade of the train is computed in a single pass
        (one queue-occupancy advance, at most one delivery-event arm) and is
        identical to calling :meth:`send` once per packet in order.
        """
        if self._sink is None:
            raise RuntimeError(f"link {self.name!r} has no sink connected")
        if self.legacy:
            for packet in packets:
                self.send(packet)
            return
        sim = self.sim
        now = sim._now
        waiting = self._waiting
        queued = self._queued_bytes
        while waiting and waiting[0][0] <= now:
            queued -= waiting.popleft()[1]
        pending = self._pending
        prev_done = pending[-1][_DONE] if pending else None
        rate = self._rate_bps
        delay = self.delay_s
        queue_limit = self.queue_bytes
        aqm = self.aqm
        first_deliver: Optional[float] = None
        for packet in packets:
            size = packet.size_bytes
            if aqm is not None and aqm.should_drop(now, (queued * 8) / rate):
                self._drop(packet, size, aqm=True)
                continue
            if queued + size > queue_limit:
                self._drop(packet, size)
                continue
            packet.enqueued_at = now
            start = prev_done if prev_done is not None and prev_done > now else now
            done = start + size * 8 / rate
            deliver_at = done + delay
            pending.append([now, start, done, deliver_at, packet])
            if start > now:
                waiting.append((start, size))
                queued += size
            prev_done = done
            if first_deliver is None:
                first_deliver = deliver_at
        self._queued_bytes = queued
        if first_deliver is not None and self._delivery_seq is None:
            sim._seq = seq = sim._seq + 1
            self._delivery_seq = seq
            heappush(sim._queue, (pending[0][_DELIVER], seq, self._deliver_due))

    def _drop(self, packet: Packet, size: int, aqm: bool = False) -> None:
        self.stats.packets_dropped += 1
        self.stats.bytes_dropped += size
        if aqm:
            self.stats.packets_dropped_aqm += 1
        if self.on_drop is not None:
            self.on_drop(packet)

    def _deliver_jittered(self, packet: Packet, base_at: float) -> None:
        """Deliver through the jitter policy (impairment path only).

        ``base_at`` is the unjittered absolute delivery time; the extra
        delay is clamped so deliveries stay monotonic per link -- jitter
        widens inter-arrival gaps but never reorders packets.  Shared by
        the fast and legacy pipelines so their clamp logic cannot diverge.
        """
        sim = self.sim
        extra = self.jitter_model.sample(sim.rng)
        deliver_at = base_at + extra
        if deliver_at < self._jitter_horizon:
            deliver_at = self._jitter_horizon
        else:
            self._jitter_horizon = deliver_at
        sink = self._sink
        sim.call_at(deliver_at, lambda p=packet: sink(p))

    def _deliver_due(self) -> None:
        sim = self.sim
        now = sim._now
        pending = self._pending
        stats = self.stats
        sink = self._sink
        loss_rate = self.loss_rate
        loss_model = self.loss_model
        jitter = self.jitter_model
        while pending and pending[0][_DELIVER] <= now:
            record = pending.popleft()
            packet = record[_PACKET]
            stats.packets_sent += 1
            stats.bytes_sent += packet.size_bytes
            queueing = record[_START] - record[_ARRIVAL]
            if queueing > 0.0:
                packet.queueing_delay += queueing
            if loss_model is not None:
                lost = loss_model.sample(sim.rng)
            else:
                lost = loss_rate > 0.0 and sim.rng.random() < loss_rate
            if lost:
                stats.packets_lost_random += 1
            elif jitter is None:
                sink(packet)  # type: ignore[misc]
            else:
                self._deliver_jittered(packet, now)
        if pending:
            sim._seq = seq = sim._seq + 1
            self._delivery_seq = seq
            heappush(sim._queue, (pending[0][_DELIVER], seq, self._deliver_due))
        else:
            self._delivery_seq = None

    # --------------------------------------------------- legacy per-packet path
    def _serve_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        packet = self._queue.popleft()
        self._queued_bytes -= packet.size_bytes
        if packet.enqueued_at is not None:
            packet.queueing_delay += self.sim.now - packet.enqueued_at
        serialization = packet.size_bits / self._rate_bps
        self.sim.call_in(serialization, lambda p=packet: self._transmit_done(p))

    def _transmit_done(self, packet: Packet) -> None:
        self.stats.packets_sent += 1
        self.stats.bytes_sent += packet.size_bytes
        sim = self.sim
        if self.loss_model is not None:
            lost = self.loss_model.sample(sim.rng)
        else:
            lost = self.loss_rate > 0.0 and sim.rng.random() < self.loss_rate
        if lost:
            self.stats.packets_lost_random += 1
        else:
            sink = self._sink
            assert sink is not None
            if self.jitter_model is None:
                sim.call_in(self.delay_s, lambda p=packet: sink(p))
            else:
                self._deliver_jittered(packet, sim._now + self.delay_s)
        self._serve_next()

    # ---------------------------------------------------------- monitoring
    def sample_queue(self) -> None:
        """Record the current queue occupancy (used by the capture layer)."""
        self.stats.queue_samples.append((self.sim.now, self.queued_bytes))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Link({self.name!r}, rate={self._rate_bps / 1e6:.2f} Mbps, "
            f"queue={self.queued_bytes}/{self.queue_bytes} B)"
        )
