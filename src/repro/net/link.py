"""Shaped link model: the emulated equivalent of ``tc`` on the access link.

A :class:`Link` is unidirectional.  It models

* **serialization** at the link's current rate (the rate may be changed at
  any time by a :class:`~repro.net.shaper.LinkShaper`, which is how the
  paper's static shaping levels and 30-second transient drops are applied),
* a **drop-tail queue** bounded in bytes (the router's buffer),
* fixed **propagation delay**, and
* optional i.i.d. **random loss**.

Per-link counters (:class:`LinkStats`) record everything the analysis layer
needs: delivered/dropped packets and bytes, and a time series of queue
occupancy samples used to diagnose bufferbloat-style behaviour in the
competition experiments.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.net.packet import Packet
from repro.net.simulator import Simulator

__all__ = ["Link", "LinkStats", "DEFAULT_QUEUE_BYTES"]

#: Default queue size.  Roughly 64 KB, i.e. ~1 second of buffering at
#: 0.5 Mbps and ~50 ms at 10 Mbps -- consistent with the small CPE buffers of
#: the paper's Turris Omnia router.
DEFAULT_QUEUE_BYTES = 64_000


@dataclass
class LinkStats:
    """Aggregate counters maintained by a :class:`Link`."""

    packets_sent: int = 0
    packets_dropped: int = 0
    packets_lost_random: int = 0
    bytes_sent: int = 0
    bytes_dropped: int = 0
    queue_samples: list[tuple[float, int]] = field(default_factory=list)

    @property
    def drop_rate(self) -> float:
        """Fraction of offered packets dropped at the queue."""
        offered = self.packets_sent + self.packets_dropped
        if offered == 0:
            return 0.0
        return self.packets_dropped / offered


class Link:
    """A unidirectional, rate-limited, lossy link with a drop-tail queue.

    Parameters
    ----------
    sim:
        The shared simulator.
    name:
        Human-readable identifier, e.g. ``"c1-uplink"``.
    rate_bps:
        Initial capacity in bits per second.
    delay_s:
        One-way propagation delay in seconds.
    queue_bytes:
        Buffer size of the drop-tail queue.
    loss_rate:
        Independent random loss probability applied to packets that survive
        the queue (models residual last-mile loss; zero by default because
        the paper's testbed used wired links).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        rate_bps: float,
        delay_s: float = 0.005,
        queue_bytes: int = DEFAULT_QUEUE_BYTES,
        loss_rate: float = 0.0,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError("link rate must be positive")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        self.sim = sim
        self.name = name
        self._rate_bps = float(rate_bps)
        self.delay_s = float(delay_s)
        self.queue_bytes = int(queue_bytes)
        self.loss_rate = float(loss_rate)
        self.stats = LinkStats()

        self._queue: deque[Packet] = deque()
        self._queued_bytes = 0
        self._busy = False
        self._sink: Optional[Callable[[Packet], None]] = None
        #: Called with a dropped packet; congestion controllers of locally
        #: originated traffic (e.g. a sender's own uplink) may subscribe to
        #: model immediate local loss detection, but by default losses are
        #: only observed end-to-end.
        self.on_drop: Optional[Callable[[Packet], None]] = None

    # ------------------------------------------------------------------ API
    @property
    def rate_bps(self) -> float:
        """Current capacity in bits per second."""
        return self._rate_bps

    def set_rate(self, rate_bps: float) -> None:
        """Change the link capacity (the emulated ``tc class change``)."""
        if rate_bps <= 0:
            raise ValueError("link rate must be positive")
        self._rate_bps = float(rate_bps)

    def connect(self, sink: Callable[[Packet], None]) -> None:
        """Attach the downstream consumer (next link hop or receiving host)."""
        self._sink = sink

    @property
    def queued_bytes(self) -> int:
        """Bytes currently waiting in the queue (excludes the packet in service)."""
        return self._queued_bytes

    @property
    def queue_depth(self) -> int:
        """Number of packets currently waiting in the queue."""
        return len(self._queue)

    def queueing_delay_estimate(self) -> float:
        """Expected delay a newly arriving packet would see from the backlog."""
        return (self._queued_bytes * 8) / self._rate_bps

    # ------------------------------------------------------------ data path
    def send(self, packet: Packet) -> None:
        """Offer ``packet`` to the link.

        The packet is dropped if the queue has no room (drop-tail); otherwise
        it is enqueued and will be serialized at the link's current rate.
        """
        if self._sink is None:
            raise RuntimeError(f"link {self.name!r} has no sink connected")
        if self._queued_bytes + packet.size_bytes > self.queue_bytes:
            self.stats.packets_dropped += 1
            self.stats.bytes_dropped += packet.size_bytes
            if self.on_drop is not None:
                self.on_drop(packet)
            return
        packet.enqueued_at = self.sim.now
        self._queue.append(packet)
        self._queued_bytes += packet.size_bytes
        if not self._busy:
            self._serve_next()

    def _serve_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        packet = self._queue.popleft()
        self._queued_bytes -= packet.size_bytes
        if packet.enqueued_at is not None:
            packet.queueing_delay += self.sim.now - packet.enqueued_at
        serialization = packet.size_bits / self._rate_bps
        self.sim.schedule(serialization, lambda p=packet: self._transmit_done(p))

    def _transmit_done(self, packet: Packet) -> None:
        self.stats.packets_sent += 1
        self.stats.bytes_sent += packet.size_bytes
        if self.loss_rate > 0.0 and self.sim.rng.random() < self.loss_rate:
            self.stats.packets_lost_random += 1
        else:
            sink = self._sink
            assert sink is not None
            self.sim.schedule(self.delay_s, lambda p=packet: sink(p))
        self._serve_next()

    # ---------------------------------------------------------- monitoring
    def sample_queue(self) -> None:
        """Record the current queue occupancy (used by the capture layer)."""
        self.stats.queue_samples.append((self.sim.now, self._queued_bytes))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Link({self.name!r}, rate={self._rate_bps / 1e6:.2f} Mbps, "
            f"queue={self._queued_bytes}/{self.queue_bytes} B)"
        )
