"""Canonical emulated topologies used by the paper's experiments.

Two layouts cover every experiment in the paper (see Figure 7 of the paper):

* **Access topology** -- a single measured client (``C1``) sits behind a
  shaped access link to its home router; every other participant (``C2``,
  ``C3`` ... and the VCA media server) is reachable over an unconstrained WAN
  path.  This is the layout of the static-shaping (Section 3), disruption
  (Section 4) and call-modality (Section 6) experiments.

* **Competition topology** -- the measured client ``C1`` and the
  competing-flow client ``F1`` share a switch; the switch--router link is the
  shaped bottleneck.  Their counterparties (``C2``, ``F2``, iPerf/CDN
  servers) are unconstrained.  This is the layout of the Section 5
  competition experiments.

Only the shaped links are modelled with queues and serialization; the
unconstrained WAN path is a pure propagation delay, which keeps event counts
low enough for full parameter sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.net.link import DEFAULT_QUEUE_BYTES, Link
from repro.net.node import Host
from repro.net.router import DelayPipe, Router, SourceRoutedEgress
from repro.net.shaper import UNCONSTRAINED_BPS, BandwidthProfile, LinkShaper
from repro.net.simulator import Simulator

__all__ = [
    "AccessTopology",
    "CascadeTopology",
    "CompetitionTopology",
    "build_access_topology",
    "build_cascade_topology",
    "build_competition_topology",
]

#: One-way propagation delay between a home router and the VCA media server.
DEFAULT_WAN_DELAY_S = 0.012

#: One-way propagation delay of the (wired) access link itself.
DEFAULT_ACCESS_DELAY_S = 0.002

#: One-way delay between hosts on the same local network (iPerf server case;
#: the paper reports a 2 ms RTT to its iPerf3 server).
DEFAULT_LAN_DELAY_S = 0.001

#: One-way propagation delay of an inter-region server-to-server trunk
#: (geo-distributed data centres, e.g. US east/west coast).
DEFAULT_TRUNK_DELAY_S = 0.040


@dataclass
class AccessTopology:
    """Topology with a single shaped access link in front of ``C1``."""

    sim: Simulator
    hosts: dict[str, Host]
    router: Router
    core: Router
    uplink: Link
    downlink: Link
    measured_client: str
    server_name: str
    shapers: list[LinkShaper] = field(default_factory=list)

    def host(self, name: str) -> Host:
        """Look up a host by name."""
        return self.hosts[name]

    def shape(
        self,
        up_profile: Optional[BandwidthProfile] = None,
        down_profile: Optional[BandwidthProfile] = None,
    ) -> None:
        """Apply bandwidth profiles to the measured client's access link."""
        if up_profile is not None:
            shaper = LinkShaper(self.sim, self.uplink, up_profile)
            shaper.apply()
            self.shapers.append(shaper)
        if down_profile is not None:
            shaper = LinkShaper(self.sim, self.downlink, down_profile)
            shaper.apply()
            self.shapers.append(shaper)

    def impair(self, direction: str, loss_model=None, jitter_model=None, aqm=None) -> None:
        """Declare the complete impairment state of one access-link direction.

        Every call replaces all three policies of that direction (omitted
        ones are cleared); for partial updates use
        :meth:`~repro.net.link.Link.configure_impairments` directly.
        Policies are stateful; use a fresh instance per direction.
        """
        if direction not in ("up", "down"):
            raise ValueError(f"impair takes one direction ('up'/'down'), got {direction!r}")
        link = self.uplink if direction == "up" else self.downlink
        link.configure_impairments(loss_model=loss_model, jitter_model=jitter_model, aqm=aqm)


@dataclass
class CompetitionTopology:
    """Topology where ``C1`` and ``F1`` share a shaped bottleneck link."""

    sim: Simulator
    hosts: dict[str, Host]
    switch: Router
    router: Router
    core: Router
    bottleneck_up: Link
    bottleneck_down: Link
    local_clients: tuple[str, ...]
    shapers: list[LinkShaper] = field(default_factory=list)

    def host(self, name: str) -> Host:
        """Look up a host by name."""
        return self.hosts[name]

    def shape(
        self,
        up_profile: Optional[BandwidthProfile] = None,
        down_profile: Optional[BandwidthProfile] = None,
    ) -> None:
        """Apply bandwidth profiles to the shared bottleneck link."""
        if up_profile is not None:
            shaper = LinkShaper(self.sim, self.bottleneck_up, up_profile)
            shaper.apply()
            self.shapers.append(shaper)
        if down_profile is not None:
            shaper = LinkShaper(self.sim, self.bottleneck_down, down_profile)
            shaper.apply()
            self.shapers.append(shaper)

    def impair(self, direction: str, loss_model=None, jitter_model=None, aqm=None) -> None:
        """Declare the complete impairment state of one bottleneck direction.

        Every call replaces all three policies of that direction (omitted
        ones are cleared); for partial updates use
        :meth:`~repro.net.link.Link.configure_impairments` directly.
        Policies are stateful; use a fresh instance per direction.
        """
        if direction not in ("up", "down"):
            raise ValueError(f"impair takes one direction ('up'/'down'), got {direction!r}")
        link = self.bottleneck_up if direction == "up" else self.bottleneck_down
        link.configure_impairments(loss_model=loss_model, jitter_model=jitter_model, aqm=aqm)


def build_access_topology(
    sim: Simulator,
    client_names: Sequence[str] = ("C1", "C2"),
    server_name: str = "S",
    extra_server_names: Iterable[str] = (),
    wan_delay_s: float = DEFAULT_WAN_DELAY_S,
    access_delay_s: float = DEFAULT_ACCESS_DELAY_S,
    queue_bytes: int = DEFAULT_QUEUE_BYTES,
    fused: bool = True,
    local_client_names: Sequence[str] = (),
) -> AccessTopology:
    """Build the single-shaped-client topology.

    ``client_names[0]`` is the measured client (the paper's C1): it sits
    behind the shaped access link.  All other clients and all servers are
    reachable over unconstrained, delay-only paths.

    ``local_client_names`` home additional hosts *behind the same shaped
    access link* as the measured client: they transmit through its uplink and
    receive through its downlink, so the access link is the contended
    bottleneck between the measured call and whatever those hosts run.  This
    is the substrate of the ``ScenarioSpec.workload`` axis (a competing VCA
    client, iPerf flows, a streaming player next to C1 on the home network).
    When empty (the default) the wiring is exactly the classic single-client
    layout.

    With ``fused=True`` (the default) the delay-only paths are source-routed:
    a host's egress resolves the destination immediately and delivers over a
    single-event :class:`~repro.net.router.DelayBus` with the summed path
    delay, instead of hopping egress pipe -> core router -> destination pipe.
    Arrival times and per-flow ordering are identical; the hop-by-hop wiring
    (``fused=False``) is kept for the PR 1 engine baseline in the scaling
    benchmark.
    """
    if not client_names:
        raise ValueError("at least one client is required")
    # Source routing delivers over a DelayBus, which needs a positive total
    # path delay; a zero-delay topology keeps the hop-by-hop wiring (where
    # DelayPipe degenerates to a direct call).
    fused = fused and wan_delay_s + DEFAULT_LAN_DELAY_S > 0.0
    measured = client_names[0]
    hosts: dict[str, Host] = {}

    core = Router(sim, "core")
    home_router = Router(sim, f"router-{measured}")

    # Measured client behind the shaped access link.
    c1 = Host(sim, measured)
    hosts[measured] = c1
    uplink = Link(sim, f"{measured}-uplink", UNCONSTRAINED_BPS, access_delay_s, queue_bytes)
    downlink = Link(sim, f"{measured}-downlink", UNCONSTRAINED_BPS, access_delay_s, queue_bytes)
    uplink.connect(home_router.receive)
    c1.set_egress(uplink.send, batch=uplink.send_batch)
    home_router.add_link_route(measured, downlink)
    home_router.set_default_delay_route(
        core.receive, wan_delay_s, receiver_batch=core.receive_batch
    )
    core.add_delay_route(
        measured, home_router.receive, wan_delay_s, receiver_batch=home_router.receive_batch
    )

    if local_client_names:
        # Workload hosts share C1's access link: they transmit straight into
        # the uplink queue and a zero-delay LAN demux fans the shared
        # downlink out by destination (delay-0 routes dispatch directly, so
        # arrival times are unchanged for C1).
        lan = Router(sim, f"lan-{measured}")
        downlink.connect(lan.receive)
        lan.add_delay_route(measured, c1.receive, 0.0, receiver_batch=c1.receive_batch)
        for name in local_client_names:
            host = Host(sim, name)
            hosts[name] = host
            host.set_egress(uplink.send, batch=uplink.send_batch)
            lan.add_delay_route(name, host.receive, 0.0, receiver_batch=host.receive_batch)
            home_router.add_link_route(name, downlink)
            core.add_delay_route(
                name, home_router.receive, wan_delay_s, receiver_batch=home_router.receive_batch
            )
    else:
        downlink.connect(c1.receive)

    server_names = (server_name, *extra_server_names)

    # Remaining clients: unconstrained, one WAN hop away from the core.
    remote_clients: list[Host] = []
    client_egresses: list[SourceRoutedEgress] = []
    for name in client_names[1:]:
        host = Host(sim, name)
        hosts[name] = host
        remote_clients.append(host)
        pipe = DelayPipe(sim, core.receive, wan_delay_s, receiver_batch=core.receive_batch)
        if fused:
            egress = SourceRoutedEgress(
                sim, wan_delay_s + DEFAULT_LAN_DELAY_S, pipe.send, fallback_batch=pipe.send_batch
            )
            client_egresses.append(egress)
            host.set_egress(egress.send, batch=egress.send_batch)
        else:
            host.set_egress(pipe.send, batch=pipe.send_batch)
        core.add_delay_route(
            name, host.receive, wan_delay_s, receiver_batch=host.receive_batch
        )

    # Media server(s): co-located with the core (provider data centre).
    for name in server_names:
        server = Host(sim, name)
        hosts[name] = server
        pipe = DelayPipe(sim, core.receive, DEFAULT_LAN_DELAY_S, receiver_batch=core.receive_batch)
        if fused:
            # The whole client fan-out shares one data-centre + WAN delay,
            # so one DelayBus covers every destination of the server.
            egress = SourceRoutedEgress(
                sim, DEFAULT_LAN_DELAY_S + wan_delay_s, pipe.send, fallback_batch=pipe.send_batch
            )
            for client in remote_clients:
                egress.add_route(client.name, client.receive, client.receive_batch)
            egress.add_route(measured, home_router.receive, home_router.receive_batch)
            for local_name in local_client_names:
                egress.add_route(local_name, home_router.receive, home_router.receive_batch)
            server.set_egress(egress.send, batch=egress.send_batch)
        else:
            server.set_egress(pipe.send, batch=pipe.send_batch)
        core.add_delay_route(
            name, server.receive, DEFAULT_LAN_DELAY_S, receiver_batch=server.receive_batch
        )

    # Client egresses can source-route to the servers (wan + lan total).
    for egress in client_egresses:
        for name in server_names:
            egress.add_route(name, hosts[name].receive, hosts[name].receive_batch)

    return AccessTopology(
        sim=sim,
        hosts=hosts,
        router=home_router,
        core=core,
        uplink=uplink,
        downlink=downlink,
        measured_client=measured,
        server_name=server_name,
    )


@dataclass
class CascadeTopology:
    """Topology of a cascaded call: regional access islands joined by trunks.

    Region 0 contains the measured client behind the same shaped access-link
    wiring as :class:`AccessTopology` (so :meth:`shape` / :meth:`impair` have
    identical semantics), plus that region's SFU node.  Every further region
    is an island of clients around its own node, and nodes are joined by
    directed pairs of real :class:`~repro.net.link.Link` trunks that can be
    shaped and impaired independently with :meth:`shape_trunk` /
    :meth:`impair_trunk`.
    """

    sim: Simulator
    hosts: dict[str, Host]
    router: Router
    cores: dict[str, Router]
    uplink: Link
    downlink: Link
    measured_client: str
    server_name: str
    #: SFU node hosts keyed by node id (== host name).
    node_hosts: dict[str, Host] = field(default_factory=dict)
    #: Directed trunk links keyed by ``(src_node, dst_node)``.
    trunk_links: dict[tuple[str, str], Link] = field(default_factory=dict)
    shapers: list[LinkShaper] = field(default_factory=list)

    def host(self, name: str) -> Host:
        """Look up a host (client or node) by name."""
        return self.hosts[name]

    @property
    def core(self) -> Router:
        """The measured region's core (AccessTopology-compatible alias)."""
        return next(iter(self.cores.values()))

    def shape(
        self,
        up_profile: Optional[BandwidthProfile] = None,
        down_profile: Optional[BandwidthProfile] = None,
    ) -> None:
        """Apply bandwidth profiles to the measured client's access link."""
        if up_profile is not None:
            shaper = LinkShaper(self.sim, self.uplink, up_profile)
            shaper.apply()
            self.shapers.append(shaper)
        if down_profile is not None:
            shaper = LinkShaper(self.sim, self.downlink, down_profile)
            shaper.apply()
            self.shapers.append(shaper)

    def impair(self, direction: str, loss_model=None, jitter_model=None, aqm=None) -> None:
        """Declare the complete impairment state of one access-link direction."""
        if direction not in ("up", "down"):
            raise ValueError(f"impair takes one direction ('up'/'down'), got {direction!r}")
        link = self.uplink if direction == "up" else self.downlink
        link.configure_impairments(loss_model=loss_model, jitter_model=jitter_model, aqm=aqm)

    def trunk(self, src_node: str, dst_node: str) -> Link:
        """The directed trunk link from ``src_node`` to ``dst_node``."""
        return self.trunk_links[(src_node, dst_node)]

    def shape_trunk(
        self,
        src_node: str,
        dst_node: str,
        profile: BandwidthProfile,
        both: bool = True,
    ) -> None:
        """Apply a bandwidth profile to a trunk (both directions by default)."""
        directions = [(src_node, dst_node)]
        if both:
            directions.append((dst_node, src_node))
        for key in directions:
            shaper = LinkShaper(self.sim, self.trunk_links[key], profile)
            shaper.apply()
            self.shapers.append(shaper)

    def impair_trunk(
        self,
        src_node: str,
        dst_node: str,
        loss_model=None,
        jitter_model=None,
        aqm=None,
    ) -> None:
        """Declare the complete impairment state of one directed trunk.

        Impairment policies are stateful, so each directed trunk needs its
        own instances -- impair the reverse direction with a second call.
        """
        self.trunk_links[(src_node, dst_node)].configure_impairments(
            loss_model=loss_model, jitter_model=jitter_model, aqm=aqm
        )


def build_cascade_topology(
    sim: Simulator,
    plan,
    wan_delay_s: float = DEFAULT_WAN_DELAY_S,
    access_delay_s: float = DEFAULT_ACCESS_DELAY_S,
    lan_delay_s: float = DEFAULT_LAN_DELAY_S,
    trunk_delay_s: float = DEFAULT_TRUNK_DELAY_S,
    queue_bytes: int = DEFAULT_QUEUE_BYTES,
    local_client_names: Sequence[str] = (),
    extra_client_names: Sequence[str] = (),
    extra_server_names: Sequence[str] = (),
) -> CascadeTopology:
    """Build the geo-distributed cascade topology for a ``CascadePlan``.

    ``plan`` is duck-typed (``repro.vca.sfu.cascade.CascadePlan``: regions
    with ``.node`` / ``.clients``, plus ``.trunks`` edges) so the net layer
    does not import the VCA layer.  The first client of the first region is
    the measured client: it sits behind the same shaped access wiring as
    :func:`build_access_topology` (links named ``{client}-uplink`` /
    ``{client}-downlink``), so a one-region cascade is byte-identical to the
    access topology.  Each trunk edge becomes a *pair* of directed
    :class:`~repro.net.link.Link` instances named ``trunk-{a}>{b}`` with
    ``trunk_delay_s`` propagation, shapeable and impairable per direction.

    The workload axis composes with cascades through the same three hooks as
    the access builder: ``local_client_names`` home hosts behind the measured
    client's shaped access link (shared uplink/downlink, zero-delay LAN
    demux), while ``extra_client_names`` / ``extra_server_names`` hang
    unconstrained counterparties off the measured region's core (WAN and LAN
    delay respectively).  All three default to empty, leaving the
    workload-free cascade wiring byte-identical.
    """
    regions = list(plan.regions)
    if not regions:
        raise ValueError("a cascade needs at least one region")
    measured = regions[0].clients[0]
    hosts: dict[str, Host] = {}
    node_hosts: dict[str, Host] = {}
    cores: dict[str, Router] = {}
    trunk_links: dict[tuple[str, str], Link] = {}

    # Node hosts and their egress routers first: trunks and region wiring
    # both hang off them.
    node_routers: dict[str, Router] = {}
    for region in regions:
        node = Host(sim, region.node)
        hosts[region.node] = node
        node_hosts[region.node] = node
        node_routers[region.node] = Router(sim, f"egress-{region.node}")

    # Directed trunk pairs between nodes.
    for a, b in plan.trunks:
        for src, dst in ((a, b), (b, a)):
            link = Link(
                sim, f"trunk-{src}>{dst}", UNCONSTRAINED_BPS, trunk_delay_s, queue_bytes
            )
            link.connect(node_hosts[dst].receive)
            trunk_links[(src, dst)] = link
            node_routers[src].add_link_route(dst, link)

    home_router: Optional[Router] = None
    uplink: Optional[Link] = None
    downlink: Optional[Link] = None
    for index, region in enumerate(regions):
        core = Router(sim, f"core-{region.node}")
        cores[region.node] = core
        node = node_hosts[region.node]
        egress = node_routers[region.node]
        node.set_egress(egress.receive, batch=egress.receive_batch)
        egress.set_default_delay_route(
            core.receive, lan_delay_s, receiver_batch=core.receive_batch
        )
        core.add_delay_route(
            region.node, node.receive, lan_delay_s, receiver_batch=node.receive_batch
        )
        for client_name in region.clients:
            if index == 0 and client_name == measured:
                # The measured client keeps the exact AccessTopology wiring:
                # shaped access links in front of a home router one WAN hop
                # from the regional core.
                home_router = Router(sim, f"router-{measured}")
                c1 = Host(sim, measured)
                hosts[measured] = c1
                uplink = Link(
                    sim, f"{measured}-uplink", UNCONSTRAINED_BPS, access_delay_s, queue_bytes
                )
                downlink = Link(
                    sim, f"{measured}-downlink", UNCONSTRAINED_BPS, access_delay_s, queue_bytes
                )
                uplink.connect(home_router.receive)
                c1.set_egress(uplink.send, batch=uplink.send_batch)
                home_router.add_link_route(measured, downlink)
                home_router.set_default_delay_route(
                    core.receive, wan_delay_s, receiver_batch=core.receive_batch
                )
                core.add_delay_route(
                    measured,
                    home_router.receive,
                    wan_delay_s,
                    receiver_batch=home_router.receive_batch,
                )
                egress.add_delay_route(
                    measured,
                    home_router.receive,
                    lan_delay_s + wan_delay_s,
                    receiver_batch=home_router.receive_batch,
                )
                if local_client_names:
                    # Same shared-access wiring as build_access_topology:
                    # workload hosts feed the measured uplink directly and a
                    # zero-delay LAN demux splits the shared downlink.
                    lan = Router(sim, f"lan-{measured}")
                    downlink.connect(lan.receive)
                    lan.add_delay_route(
                        measured, c1.receive, 0.0, receiver_batch=c1.receive_batch
                    )
                    for local_name in local_client_names:
                        local = Host(sim, local_name)
                        hosts[local_name] = local
                        local.set_egress(uplink.send, batch=uplink.send_batch)
                        lan.add_delay_route(
                            local_name, local.receive, 0.0, receiver_batch=local.receive_batch
                        )
                        home_router.add_link_route(local_name, downlink)
                        core.add_delay_route(
                            local_name,
                            home_router.receive,
                            wan_delay_s,
                            receiver_batch=home_router.receive_batch,
                        )
                else:
                    downlink.connect(c1.receive)
                continue
            client = Host(sim, client_name)
            hosts[client_name] = client
            pipe = DelayPipe(sim, core.receive, wan_delay_s, receiver_batch=core.receive_batch)
            client_egress = SourceRoutedEgress(
                sim, wan_delay_s + lan_delay_s, pipe.send, fallback_batch=pipe.send_batch
            )
            client_egress.add_route(region.node, node.receive, node.receive_batch)
            client.set_egress(client_egress.send, batch=client_egress.send_batch)
            core.add_delay_route(
                client_name, client.receive, wan_delay_s, receiver_batch=client.receive_batch
            )
            # The node reaches its regional clients in one fused LAN+WAN hop.
            egress.add_delay_route(
                client_name,
                client.receive,
                lan_delay_s + wan_delay_s,
                receiver_batch=client.receive_batch,
            )

    # Workload counterparties hang off the measured region's core: extra
    # clients one WAN hop away, extra servers co-located (LAN delay) --
    # mirroring the access builder's remote wiring.
    region0_core = cores[regions[0].node]
    for name in extra_client_names:
        host = Host(sim, name)
        hosts[name] = host
        pipe = DelayPipe(
            sim, region0_core.receive, wan_delay_s, receiver_batch=region0_core.receive_batch
        )
        host.set_egress(pipe.send, batch=pipe.send_batch)
        region0_core.add_delay_route(
            name, host.receive, wan_delay_s, receiver_batch=host.receive_batch
        )
    for name in extra_server_names:
        server = Host(sim, name)
        hosts[name] = server
        pipe = DelayPipe(
            sim, region0_core.receive, lan_delay_s, receiver_batch=region0_core.receive_batch
        )
        server.set_egress(pipe.send, batch=pipe.send_batch)
        region0_core.add_delay_route(
            name, server.receive, lan_delay_s, receiver_batch=server.receive_batch
        )

    assert home_router is not None and uplink is not None and downlink is not None
    return CascadeTopology(
        sim=sim,
        hosts=hosts,
        router=home_router,
        cores=cores,
        uplink=uplink,
        downlink=downlink,
        measured_client=measured,
        server_name=regions[0].node,
        node_hosts=node_hosts,
        trunk_links=trunk_links,
    )


def build_competition_topology(
    sim: Simulator,
    local_clients: Sequence[str] = ("C1", "F1"),
    remote_names: Sequence[str] = ("C2", "F2", "S1", "S2"),
    wan_delay_s: float = DEFAULT_WAN_DELAY_S,
    lan_delay_s: float = DEFAULT_LAN_DELAY_S,
    queue_bytes: int = DEFAULT_QUEUE_BYTES,
) -> CompetitionTopology:
    """Build the shared-bottleneck topology of the competition experiments.

    ``local_clients`` (typically C1 and F1) hang off a switch; the
    switch--router link is the shared bottleneck whose capacity is set with
    :meth:`CompetitionTopology.shape`.  ``remote_names`` are counterparties
    and servers reachable over the unconstrained WAN.
    """
    hosts: dict[str, Host] = {}
    switch = Router(sim, "switch")
    router = Router(sim, "router")
    core = Router(sim, "core")

    bottleneck_up = Link(sim, "bottleneck-up", UNCONSTRAINED_BPS, DEFAULT_ACCESS_DELAY_S, queue_bytes)
    bottleneck_down = Link(sim, "bottleneck-down", UNCONSTRAINED_BPS, DEFAULT_ACCESS_DELAY_S, queue_bytes)
    bottleneck_up.connect(router.receive)
    bottleneck_down.connect(switch.receive)

    for name in local_clients:
        host = Host(sim, name)
        hosts[name] = host
        pipe = DelayPipe(sim, switch.receive, lan_delay_s, receiver_batch=switch.receive_batch)
        host.set_egress(pipe.send, batch=pipe.send_batch)
        switch.add_delay_route(name, host.receive, lan_delay_s, receiver_batch=host.receive_batch)
        router.add_link_route(name, bottleneck_down)

    switch.set_default_link(bottleneck_up)
    router.set_default_delay_route(core.receive, wan_delay_s, receiver_batch=core.receive_batch)

    for name in remote_names:
        host = Host(sim, name)
        hosts[name] = host
        pipe = DelayPipe(sim, core.receive, lan_delay_s, receiver_batch=core.receive_batch)
        host.set_egress(pipe.send, batch=pipe.send_batch)
        core.add_delay_route(name, host.receive, lan_delay_s, receiver_batch=host.receive_batch)

    for name in local_clients:
        core.add_delay_route(name, router.receive, wan_delay_s, receiver_batch=router.receive_batch)

    return CompetitionTopology(
        sim=sim,
        hosts=hosts,
        switch=switch,
        router=router,
        core=core,
        bottleneck_up=bottleneck_up,
        bottleneck_down=bottleneck_down,
        local_clients=tuple(local_clients),
    )
