"""Google Congestion Control (GCC) behavioural model.

GCC (Carlucci et al., reference [8] of the paper) combines a delay-based
estimator -- an over-use detector driven by the one-way delay gradient -- with
a loss-based estimator; the sender uses the minimum of the two.  Meet and the
browser-based Teams client run on top of WebRTC and therefore inherit this
controller, which is why the paper observes:

* efficient (>85 %) uplink utilization under static constraints,
* multiplicative-increase recovery taking tens of seconds after severe drops,
* delay-sensitivity that makes the flows back off when a queue-filling
  competitor (Zoom, or a TCP bulk flow on the downlink) shares the link.

The implementation follows the published AIMD structure with the constants
exposed in :class:`GCCConfig` so the Teams-Chrome variant (more conservative
ramping, higher start rate variance) can reuse the same code.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cc.base import FeedbackReport, RateController, RateControllerConfig
from repro.cc.loss_bwe import LossBasedBwe, LossBweConfig

__all__ = ["GCCConfig", "GCCController"]


@dataclass
class GCCConfig(RateControllerConfig):
    """Tunable constants of the GCC model."""

    #: Queueing delay above which the over-use detector triggers.
    overuse_threshold_s: float = 0.030
    #: Delay-gradient threshold (growth per feedback interval) that also
    #: counts as over-use even before the absolute threshold is crossed.
    gradient_threshold_s: float = 0.010
    #: Multiplicative backoff applied to the *receive* rate on over-use.
    backoff_factor: float = 0.85
    #: Multiplicative increase per second in the absence of congestion.
    increase_factor_per_s: float = 1.08
    #: Additive increase floor (bps per second) used close to convergence.
    additive_increase_bps_per_s: float = 50_000.0
    #: Loss fraction above which the loss-based estimator backs off.
    loss_backoff_threshold: float = 0.10
    #: Loss fraction below which the loss-based estimator may increase.
    loss_increase_threshold: float = 0.02
    #: Multiplicative decrease strength of the loss-based estimator.
    loss_decrease_factor: float = 0.3
    #: Growth per second of the loss-based estimate below the increase
    #: threshold.
    loss_increase_factor_per_s: float = 1.08
    #: Floor on a loss-driven decrease as a multiple of the delivered rate.
    loss_receive_floor_multiplier: float = 0.9
    #: Dwell time inside the dead band (between the two loss thresholds)
    #: before the bounded recovery of :class:`~repro.cc.loss_bwe.LossBasedBwe`
    #: begins.
    loss_held_hold_s: float = 3.0
    #: Cautious growth rate during a bounded recovery window.
    loss_held_increase_factor_per_s: float = 1.04
    #: Bound of one recovery window relative to the post-backoff estimate.
    loss_recovery_cap_multiplier: float = 2.0
    #: EWMA smoothing of the loss input (0 = react to raw report windows).
    loss_smoothing: float = 0.0
    #: Hold time after an over-use backoff before increasing again.
    hold_time_s: float = 1.0
    #: Whether the delay-based estimate is capped at a multiple of the
    #: measured receive rate (standard GCC behaviour).
    cap_to_receive_rate: bool = True
    #: The multiple used for the receive-rate cap.  1.5 is GCC's value for
    #: senders; server-side per-receiver estimators use a larger multiple to
    #: stand in for the bandwidth probing an SFU performs when it is
    #: application-limited.
    receive_rate_cap_multiplier: float = 1.5
    #: Lower bound on the receive-rate cap; ``None`` uses the start bitrate.
    #: This models WebRTC's ALR probing at the sender: even when the encoder
    #: is sending very little, the estimate may recover at least this far.
    receive_rate_cap_floor_bps: float | None = None

    def loss_bwe_config(self) -> LossBweConfig:
        """The shared loss-based estimator parameterised by this config."""
        return LossBweConfig(
            increase_threshold=self.loss_increase_threshold,
            decrease_threshold=self.loss_backoff_threshold,
            decrease_factor=self.loss_decrease_factor,
            increase_factor_per_s=self.loss_increase_factor_per_s,
            receive_rate_floor_multiplier=self.loss_receive_floor_multiplier,
            held_hold_s=self.loss_held_hold_s,
            held_increase_factor_per_s=self.loss_held_increase_factor_per_s,
            recovery_cap_multiplier=self.loss_recovery_cap_multiplier,
            loss_smoothing=self.loss_smoothing,
            min_bitrate_bps=self.min_bitrate_bps,
            max_bitrate_bps=self.max_bitrate_bps,
        )


class GCCController(RateController):
    """Delay-gradient + loss based rate controller (WebRTC's GCC)."""

    def __init__(self, config: GCCConfig | None = None) -> None:
        cfg = config or GCCConfig()
        super().__init__(cfg)
        self.config: GCCConfig = cfg
        self._loss_bwe = LossBasedBwe(cfg.loss_bwe_config(), start_bitrate_bps=cfg.start_bitrate_bps)
        self._delay_estimate_bps = float(cfg.start_bitrate_bps)
        self._hold_until = 0.0
        self.state = "increase"

    # ----------------------------------------------------------------- API
    def on_feedback(self, report: FeedbackReport, now: float) -> float:
        cfg = self.config
        interval = report.effective_interval()
        self._loss_bwe.set_bounds(cfg.min_bitrate_bps, cfg.max_bitrate_bps)

        overusing = (
            report.queueing_delay_s > cfg.overuse_threshold_s
            or report.delay_gradient_s > cfg.gradient_threshold_s
        )
        # Only treat over-use as *our* congestion when the flow is actually
        # using a substantial fraction of its own estimate; otherwise (for
        # example right after an SFU switched down to a cheap simulcast copy
        # while the queue from the previous copy is still draining) hold the
        # estimate instead of collapsing it to a fraction of a tiny receive
        # rate.  Real GCC achieves the same through its incoming-rate window.
        near_capacity = report.receive_rate_bps >= 0.5 * self._delay_estimate_bps

        # ---------------------------------------------- delay-based estimate
        if overusing and near_capacity:
            self.state = "decrease"
            self._delay_estimate_bps = max(
                cfg.min_bitrate_bps, cfg.backoff_factor * report.receive_rate_bps
            )
            self._hold_until = now + cfg.hold_time_s
        elif overusing or now < self._hold_until:
            self.state = "hold"
        else:
            self.state = "increase"
            growth = cfg.increase_factor_per_s ** interval
            additive = cfg.additive_increase_bps_per_s * interval
            self._delay_estimate_bps = max(
                self._delay_estimate_bps * growth,
                self._delay_estimate_bps + additive,
            )
        # Never let the delay estimate run away from what is actually being
        # delivered: GCC caps its estimate at a multiple of the measured
        # receive rate.  The cap is floored (by default at the start bitrate):
        # when the application is rate-limited (e.g. a simulcast sender that
        # switched off its top copy) WebRTC's ALR probing would otherwise be
        # needed to escape the low-rate fixed point, and the floor plays that
        # role here.
        # (Reports covering essentially no traffic -- e.g. while the remote
        # side is still joining -- carry no information and are not allowed
        # to collapse the estimate.)
        if cfg.cap_to_receive_rate and report.receive_rate_bps > 120_000.0:
            floor = (
                cfg.receive_rate_cap_floor_bps
                if cfg.receive_rate_cap_floor_bps is not None
                else cfg.start_bitrate_bps
            )
            ceiling = max(cfg.receive_rate_cap_multiplier * report.receive_rate_bps, floor)
            self._delay_estimate_bps = min(self._delay_estimate_bps, ceiling)
        self._delay_estimate_bps = self._clamp(self._delay_estimate_bps)

        # ----------------------------------------------- loss-based estimate
        # The shared state machine recovers (bounded) through the dead band
        # between the two loss thresholds instead of freezing forever there.
        self._loss_bwe.on_report(report, now)

        self._target_bps = self._clamp(
            min(self._delay_estimate_bps, self._loss_bwe.estimate_bps)
        )
        return self._target_bps

    def available_bandwidth_estimate(self) -> float:
        """The delay-based estimate (what an SFU uses to pick simulcast copies)."""
        return self._delay_estimate_bps

    @property
    def loss_estimate_bps(self) -> float:
        """The loss-based estimate (what Zoom's relay uses to pick SVC layers)."""
        return self._loss_bwe.estimate_bps

    @property
    def loss_state(self) -> str:
        """State of the shared loss machine: increasing / held / decreasing."""
        return self._loss_bwe.state

    def reset(self, bitrate_bps: float | None = None) -> None:
        super().reset(bitrate_bps)
        self._delay_estimate_bps = self._target_bps
        self._loss_bwe.reset(self._target_bps)
