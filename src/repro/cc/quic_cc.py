"""QUIC congestion control used by the YouTube competitor model.

YouTube delivers video over QUIC (Section 5.3 of the paper).  QUIC's default
congestion controller is CUBIC/NewReno-like (RFC 9002 describes NewReno; the
Chromium implementation the paper's YouTube traffic would have used runs
CUBIC), so :class:`QuicCubicState` reuses the TCP CUBIC window machinery with
two QUIC-specific differences that matter for fairness experiments:

* a larger initial window (QUIC commonly starts at 32 packets), and
* slightly less aggressive multiplicative decrease when configured in its
  "TCP-friendly" mode, matching the observation of Corbel et al. (reference
  [9] of the paper) that QUIC's fairness depends on configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cc.tcp_cubic import CubicConfig, CubicState

__all__ = ["QuicCubicState"]


@dataclass
class _QuicDefaults:
    initial_cwnd_segments: float = 32.0
    beta: float = 0.7


class QuicCubicState(CubicState):
    """CUBIC window dynamics with QUIC's default parameters."""

    def __init__(self, config: CubicConfig | None = None) -> None:
        if config is None:
            defaults = _QuicDefaults()
            config = CubicConfig(
                initial_cwnd_segments=defaults.initial_cwnd_segments,
                beta=defaults.beta,
            )
        super().__init__(config)
