"""Shared loss-based bandwidth estimation state machine.

Every controller in this package (and every server-side per-receiver
estimator) needs to translate the receiver's loss fraction into a bandwidth
estimate.  Before this module existed each controller did it ad hoc, and they
all shared the same trap: a *dead zone* between the increase threshold
(typically 2 % loss) and the backoff threshold (typically 10 %) in which the
estimate froze forever.  Under sustained competition the loss fraction sits
in exactly that band, so an estimate that ratcheted down during a transient
never recovered -- the root cause of the Figure 10 failure where Teams kept
~72 % of a 0.5 Mbps downlink against Zoom.

:class:`LossBasedBwe` follows the structure of WebRTC's ``LossBasedBweV2``:
three explicit states --

* ``increasing`` -- loss below the increase threshold, multiplicative growth;
* ``decreasing`` -- loss above the backoff threshold, multiplicative decrease
  proportional to the loss, floored at a fraction of the delivered rate (the
  estimate never drops below what the network is demonstrably carrying);
* ``held`` -- loss inside the dead band.  Instead of freezing forever the
  estimator dwells for ``held_hold_s`` and then enters a *bounded recovery
  window*: cautious multiplicative growth capped at
  ``recovery_cap_multiplier`` times the post-backoff anchor.  Full-speed
  growth (and an uncapped estimate) resume only once the loss falls below
  the increase threshold again.

The bounded window is what kills the dead zone without simply raising the
backoff threshold -- PR 1 showed that raising Zoom's ``loss_increase_threshold``
fixes the Teams pair but flips the Zoom-vs-Netflix result (fig14), which is
why the constants on top of this machine are jointly calibrated by
:mod:`repro.calibrate` against all competition figures at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cc.base import FeedbackReport

__all__ = ["LossBweConfig", "LossBasedBwe"]


@dataclass
class LossBweConfig:
    """Tunable constants of the shared loss-based estimator."""

    #: Loss fraction below which the estimate grows at full speed.
    increase_threshold: float = 0.02
    #: Loss fraction above which the estimate decreases.
    decrease_threshold: float = 0.10
    #: Multiplicative decrease strength: ``estimate *= 1 - factor * loss``.
    decrease_factor: float = 0.3
    #: Multiplicative growth per second while in the increasing state.
    increase_factor_per_s: float = 1.08
    #: Floor applied on a decrease as a multiple of the delivered rate; the
    #: estimate never drops below this even under very heavy loss (0 disables
    #: the floor).  This is the anchoring that stops the ratchet-to-minimum
    #: death spiral of the old per-controller loss handling.
    receive_rate_floor_multiplier: float = 0.9
    #: Dwell time inside the dead band before bounded recovery begins.
    held_hold_s: float = 3.0
    #: Cautious growth rate during a bounded recovery window.
    held_increase_factor_per_s: float = 1.04
    #: Upper bound of one recovery window, as a multiple of the post-backoff
    #: anchor estimate.  Growth inside the dead band never exceeds this; the
    #: cap clears when loss falls below the increase threshold.
    recovery_cap_multiplier: float = 2.0
    #: EWMA coefficient applied to the per-report loss fraction before it is
    #: compared against the thresholds (0 reacts to each raw report).  RTCP
    #: windows are short (250 ms) and drop-tail loss is bursty -- a full
    #: queue can read as 60 % loss in one window and 0 % in the next -- so
    #: threshold decisions on raw windows chop the estimate on noise.
    #: WebRTC's loss-based estimator averages observations the same way.
    loss_smoothing: float = 0.0
    #: Hard bounds on the estimate.
    min_bitrate_bps: float = 100_000.0
    max_bitrate_bps: float = 6_000_000.0


class LossBasedBwe:
    """Held / increasing / decreasing loss-based bandwidth estimator."""

    #: Valid values of :attr:`state`.
    STATES = ("increasing", "held", "decreasing")

    def __init__(self, config: LossBweConfig | None = None, start_bitrate_bps: float | None = None) -> None:
        self.config = config or LossBweConfig()
        start = start_bitrate_bps if start_bitrate_bps is not None else self.config.max_bitrate_bps
        self._estimate_bps = self._clamp(float(start))
        self.state = "increasing"
        #: Time of the most recent decrease (bounded recovery dwells from here).
        self._last_decrease_at: Optional[float] = None
        #: Post-backoff anchor; ``recovery_cap_multiplier`` times this bounds
        #: growth inside the dead band.  ``None`` means uncapped.
        self._recovery_anchor_bps: Optional[float] = None
        #: Smoothed loss fraction (``None`` until the first observation).
        self._smoothed_loss: Optional[float] = None

    # ----------------------------------------------------------------- API
    @property
    def estimate_bps(self) -> float:
        """Current loss-based bandwidth estimate in bits per second."""
        return self._estimate_bps

    @property
    def smoothed_loss(self) -> Optional[float]:
        """The EWMA-smoothed loss the thresholds compare against (if enabled)."""
        return self._smoothed_loss

    def on_report(self, report: FeedbackReport, now: float) -> float:
        """Consume one feedback report and return the updated estimate."""
        return self.update(
            loss_fraction=report.loss_fraction,
            receive_rate_bps=report.receive_rate_bps,
            interval_s=report.effective_interval(),
            now=now,
        )

    def update(
        self,
        loss_fraction: float,
        receive_rate_bps: float,
        interval_s: float,
        now: float,
    ) -> float:
        cfg = self.config
        if cfg.loss_smoothing > 0.0:
            if self._smoothed_loss is None:
                self._smoothed_loss = loss_fraction
            else:
                self._smoothed_loss += cfg.loss_smoothing * (loss_fraction - self._smoothed_loss)
            loss_fraction = self._smoothed_loss
        if loss_fraction >= cfg.decrease_threshold:
            self.state = "decreasing"
            decreased = self._estimate_bps * (1.0 - cfg.decrease_factor * loss_fraction)
            if cfg.receive_rate_floor_multiplier > 0.0 and receive_rate_bps > 0.0:
                decreased = max(decreased, cfg.receive_rate_floor_multiplier * receive_rate_bps)
            self._estimate_bps = self._clamp(decreased)
            self._last_decrease_at = now
            self._recovery_anchor_bps = self._estimate_bps
        elif loss_fraction <= cfg.increase_threshold:
            self.state = "increasing"
            self._recovery_anchor_bps = None
            self._estimate_bps = self._clamp(
                self._estimate_bps * cfg.increase_factor_per_s ** interval_s
            )
        else:
            self.state = "held"
            dwell_over = (
                self._last_decrease_at is None
                or now - self._last_decrease_at >= cfg.held_hold_s
            )
            if dwell_over:
                grown = self._estimate_bps * cfg.held_increase_factor_per_s ** interval_s
                if self._recovery_anchor_bps is not None:
                    cap = self._recovery_anchor_bps * cfg.recovery_cap_multiplier
                    grown = min(grown, max(cap, self._estimate_bps))
                self._estimate_bps = self._clamp(grown)
        return self._estimate_bps

    def reset(self, bitrate_bps: float) -> None:
        """Reset to a known estimate (used when a client re-joins a call)."""
        self._estimate_bps = self._clamp(float(bitrate_bps))
        self.state = "increasing"
        self._last_decrease_at = None
        self._recovery_anchor_bps = None
        self._smoothed_loss = None

    def set_bounds(self, min_bitrate_bps: float, max_bitrate_bps: float) -> None:
        """Track the owning controller's (mutable) bitrate bounds.

        ``apply_uplink_cap`` and speaker-mode pinning rewrite a controller's
        ceiling in place; the estimator must follow or it would keep clamping
        to a stale bound.
        """
        self.config.min_bitrate_bps = min_bitrate_bps
        self.config.max_bitrate_bps = max_bitrate_bps
        self._estimate_bps = self._clamp(self._estimate_bps)

    # ------------------------------------------------------------- helpers
    def _clamp(self, value: float) -> float:
        return min(max(value, self.config.min_bitrate_bps), self.config.max_bitrate_bps)
