"""The conservative controller used by the Microsoft Teams native client.

Teams' congestion control is proprietary; the paper characterises it only
through its externally visible behaviour:

* a high nominal rate (1.4 Mbps upstream / up to 1.9 Mbps downstream,
  Table 2) with large run-to-run variability,
* a *slow-then-fast* recovery after disruptions -- the bitrate creeps up for
  several seconds before ramping back to nominal (Figure 4a), making Teams
  the slowest to recover from downlink disruptions at every severity
  (Figure 5b),
* strong passivity under competition: Teams backs off to other VCAs on the
  downlink (Figure 10b) and to TCP in both directions, achieving only ~37 %
  of a 2 Mbps uplink and ~20 % of the downlink against iPerf3 (Figure 12).

:class:`TeamsController` reproduces these traits with a delay- and
loss-sensitive AIMD whose increase is linear (and deliberately small) for a
"cautious window" after every backoff and multiplicative afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cc.base import FeedbackReport, RateController, RateControllerConfig
from repro.cc.loss_bwe import LossBasedBwe, LossBweConfig

__all__ = ["TeamsCCConfig", "TeamsController"]


@dataclass
class TeamsCCConfig(RateControllerConfig):
    """Tunable constants of the Teams-style controller."""

    #: Queueing delay above which the controller backs off.  Teams is very
    #: delay-sensitive, which is what makes it passive against queue-filling
    #: competitors (TCP, Zoom).
    delay_backoff_threshold_s: float = 0.040
    #: Loss fraction above which the controller backs off.
    loss_backoff_threshold: float = 0.02
    #: Multiplicative decrease applied on congestion.
    backoff_factor: float = 0.7
    #: Length of the cautious (linear, slow) ramping phase after a backoff.
    cautious_duration_s: float = 10.0
    #: Linear ramp rate during the cautious phase, bits per second per second.
    cautious_ramp_bps_per_s: float = 40_000.0
    #: Multiplicative increase per second once the cautious phase has passed.
    fast_increase_factor_per_s: float = 1.20
    #: Minimum spacing between consecutive backoffs.
    backoff_hold_s: float = 2.0
    #: Constants of the shared loss-based estimator that anchors the backoff
    #: base (see :meth:`loss_bwe_config`).  The congestion *trigger* above
    #: stays at ``loss_backoff_threshold``; these only shape the estimate the
    #: backoff is floored at.
    bwe_loss_increase_threshold: float = 0.02
    bwe_loss_decrease_threshold: float = 0.10
    bwe_loss_decrease_factor: float = 0.3
    bwe_increase_factor_per_s: float = 1.08
    bwe_receive_floor_multiplier: float = 0.9
    bwe_held_hold_s: float = 3.0
    bwe_held_increase_factor_per_s: float = 1.04
    bwe_recovery_cap_multiplier: float = 1.5

    def loss_bwe_config(self) -> LossBweConfig:
        """The shared loss-based estimator parameterised by this config."""
        return LossBweConfig(
            increase_threshold=self.bwe_loss_increase_threshold,
            decrease_threshold=self.bwe_loss_decrease_threshold,
            decrease_factor=self.bwe_loss_decrease_factor,
            increase_factor_per_s=self.bwe_increase_factor_per_s,
            receive_rate_floor_multiplier=self.bwe_receive_floor_multiplier,
            held_hold_s=self.bwe_held_hold_s,
            held_increase_factor_per_s=self.bwe_held_increase_factor_per_s,
            recovery_cap_multiplier=self.bwe_recovery_cap_multiplier,
            min_bitrate_bps=self.min_bitrate_bps,
            max_bitrate_bps=self.max_bitrate_bps,
        )


class TeamsController(RateController):
    """Slow-then-fast AIMD controller reproducing Teams' measured behaviour."""

    def __init__(self, config: TeamsCCConfig | None = None) -> None:
        cfg = config or TeamsCCConfig()
        super().__init__(cfg)
        self.config: TeamsCCConfig = cfg
        self._loss_bwe = LossBasedBwe(cfg.loss_bwe_config(), start_bitrate_bps=cfg.start_bitrate_bps)
        self._cautious_until = 0.0
        self._last_backoff_at = -1e9
        self.state = "steady"

    def on_feedback(self, report: FeedbackReport, now: float) -> float:
        cfg = self.config
        interval = report.effective_interval()
        self._loss_bwe.set_bounds(cfg.min_bitrate_bps, cfg.max_bitrate_bps)
        estimate = self._loss_bwe.on_report(report, now)
        congested = (
            report.queueing_delay_s > cfg.delay_backoff_threshold_s
            or report.loss_fraction > cfg.loss_backoff_threshold
        )

        if congested and now - self._last_backoff_at >= cfg.backoff_hold_s:
            self.state = "backoff"
            # Back off from what the path can demonstrably carry, not from a
            # starved receive rate: when this flow is application-limited (or
            # crowded out of the queue) the instantaneous receive rate can be
            # near zero, and multiplying *that* down collapses the target far
            # below the real available bandwidth.  The loss-based estimate
            # floors the base; repeated congestion still compounds the target
            # downward because the estimate itself decreases under loss.
            base = min(self._target_bps, max(report.receive_rate_bps, estimate))
            self._target_bps = self._clamp(cfg.backoff_factor * base)
            self._cautious_until = now + cfg.cautious_duration_s
            self._last_backoff_at = now
            return self._target_bps

        if congested:
            # Within the hold period: keep the current (already reduced) rate.
            self.state = "hold"
            return self._target_bps

        if now < self._cautious_until:
            # Slow linear creep immediately after a congestion episode; this
            # is the flat shoulder visible in Figure 4a for Teams.
            self.state = "cautious"
            self._target_bps = self._clamp(
                self._target_bps + cfg.cautious_ramp_bps_per_s * interval
            )
        else:
            self.state = "ramp"
            self._target_bps = self._clamp(
                self._target_bps * (cfg.fast_increase_factor_per_s ** interval)
            )
        return self._target_bps

    @property
    def loss_estimate_bps(self) -> float:
        """The loss-based bandwidth estimate anchoring the backoff base."""
        return self._loss_bwe.estimate_bps

    def reset(self, bitrate_bps: float | None = None) -> None:
        super().reset(bitrate_bps)
        self._loss_bwe.reset(self._target_bps)
