"""TCP CUBIC window dynamics.

The paper's competing-traffic experiments (Section 5) use an iPerf3 TCP flow
whose server runs TCP CUBIC, and Netflix traffic which is delivered over
(many) TCP CUBIC connections.  :class:`CubicState` implements the standard
CUBIC window evolution (RFC 8312): slow start, the cubic growth function
after a loss event, and multiplicative decrease with ``beta = 0.7``.

The class is a pure window calculator -- it knows nothing about packets.  The
actual segment transmission, ACK clocking and loss detection live in
:mod:`repro.apps.tcp`, which drives a :class:`CubicState` per connection.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["CubicConfig", "CubicState"]


@dataclass
class CubicConfig:
    """CUBIC constants (RFC 8312 defaults)."""

    #: Cubic scaling constant C.
    c: float = 0.4
    #: Multiplicative decrease factor beta.
    beta: float = 0.7
    #: Initial congestion window, in segments.
    initial_cwnd_segments: float = 10.0
    #: Initial slow-start threshold, in segments.
    initial_ssthresh_segments: float = 64.0
    #: Lower bound on the congestion window.
    min_cwnd_segments: float = 2.0
    #: Upper bound on the congestion window (receiver window / sanity cap).
    max_cwnd_segments: float = 2_000.0


class CubicState:
    """Congestion-window state machine for one TCP CUBIC connection."""

    def __init__(self, config: CubicConfig | None = None) -> None:
        self.config = config or CubicConfig()
        self.cwnd = float(self.config.initial_cwnd_segments)
        self.ssthresh = float(self.config.initial_ssthresh_segments)
        self._w_max = self.cwnd
        self._epoch_start: float | None = None
        self._k = 0.0
        self.loss_events = 0
        self.acks_processed = 0

    # ----------------------------------------------------------------- API
    @property
    def in_slow_start(self) -> bool:
        """True while the window is below the slow-start threshold."""
        return self.cwnd < self.ssthresh

    def on_ack(self, now: float, rtt_s: float, acked_segments: float = 1.0) -> float:
        """Grow the window for ``acked_segments`` newly acknowledged segments."""
        cfg = self.config
        self.acks_processed += 1
        if self.in_slow_start:
            self.cwnd += acked_segments
        else:
            if self._epoch_start is None:
                self._epoch_start = now
                self._w_max = max(self._w_max, self.cwnd)
                self._k = math.cbrt(self._w_max * (1.0 - cfg.beta) / cfg.c)
            t = now - self._epoch_start + rtt_s
            w_cubic = cfg.c * (t - self._k) ** 3 + self._w_max
            if w_cubic > self.cwnd:
                # Congestion-avoidance growth toward the cubic target.
                self.cwnd += max(w_cubic - self.cwnd, 0.0) / max(self.cwnd, 1.0) * acked_segments
            else:
                # TCP-friendly region: at least Reno-like growth.
                self.cwnd += acked_segments / max(self.cwnd, 1.0)
        self.cwnd = min(self.cwnd, cfg.max_cwnd_segments)
        return self.cwnd

    def on_loss(self, now: float) -> float:
        """Apply multiplicative decrease after a loss event."""
        cfg = self.config
        self.loss_events += 1
        self._w_max = self.cwnd
        self.cwnd = max(cfg.min_cwnd_segments, self.cwnd * cfg.beta)
        self.ssthresh = max(self.cwnd, cfg.min_cwnd_segments)
        self._epoch_start = None
        return self.cwnd

    def on_timeout(self) -> float:
        """Collapse the window after a retransmission timeout."""
        cfg = self.config
        self.loss_events += 1
        self._w_max = self.cwnd
        self.ssthresh = max(self.cwnd * cfg.beta, cfg.min_cwnd_segments)
        self.cwnd = cfg.min_cwnd_segments
        self._epoch_start = None
        return self.cwnd
