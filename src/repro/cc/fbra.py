"""FEC-probing rate adaptation: the Zoom-like controller.

The paper observes three distinctive Zoom behaviours and conjectures (via the
FBRA design of Nagy et al., reference [20], and a Zoom patent on server-side
FEC) that all three stem from redundancy-based congestion control:

1. after a disruption Zoom ramps in *steps*, probing periodically and
   overshooting its nominal rate for up to two minutes before settling
   (Figure 4a),
2. Zoom's sending rate tracks the available capacity closely during
   disruptions (Section 4.2 takeaway), and
3. Zoom is highly aggressive under competition, taking at least 75 % of a
   constrained link even against another Zoom call (Figures 8, 9a, 12, 13).

:class:`FBRAController` reproduces this mechanism: it periodically adds FEC
overhead on top of the media rate as a probe; if the probe does not increase
queueing delay or loss beyond (generous) thresholds, the media rate is raised
to absorb the probe.  Because the controller only backs off under heavy loss
or very large delay (its FEC lets it ride out moderate loss), it fills
drop-tail queues and crowds out loss- and delay-sensitive competitors --
exactly the measured behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cc.base import FeedbackReport, RateController, RateControllerConfig
from repro.cc.loss_bwe import LossBasedBwe, LossBweConfig

__all__ = ["FBRAConfig", "FBRAController"]


@dataclass
class FBRAConfig(RateControllerConfig):
    """Tunable constants of the FEC-probing controller."""

    #: Seconds between consecutive probe episodes.
    probe_interval_s: float = 4.0
    #: Duration of one probe episode (FEC overhead switched on).
    probe_duration_s: float = 2.0
    #: FEC overhead added during a probe, as a fraction of the media rate.
    probe_fec_ratio: float = 0.25
    #: Fraction of the probed headroom absorbed into the media rate after a
    #: successful probe.
    probe_absorb_factor: float = 0.9
    #: Loss fraction the controller tolerates before reacting (FEC recovers
    #: moderate loss, hence the high threshold).
    loss_tolerance: float = 0.18
    #: Queueing delay the controller tolerates before reacting.
    delay_tolerance_s: float = 0.15
    #: Backoff applied to the receive rate when the tolerance is exceeded.
    backoff_factor: float = 0.9
    #: How far above the nominal rate probing may push the media rate after a
    #: recovery (the paper observes Zoom overshooting its steady state).
    overshoot_factor: float = 1.5
    #: Once at/above nominal, how long the controller keeps probing above the
    #: nominal rate before decaying back to it (the paper reports roughly two
    #: minutes of elevated sending after a disruption).
    overshoot_hold_s: float = 90.0
    #: Decay rate (per second) applied when returning from overshoot.
    overshoot_decay_per_s: float = 0.02
    #: Constants of the shared loss-based estimator: its decreasing state is
    #: the controller's loss-congestion signal (the decrease threshold is
    #: ``loss_tolerance``) and its estimate floors the backoff base so an
    #: application-limited receive rate cannot collapse the target.
    bwe_loss_increase_threshold: float = 0.05
    bwe_loss_decrease_factor: float = 0.3
    bwe_increase_factor_per_s: float = 1.08
    bwe_receive_floor_multiplier: float = 0.9
    bwe_held_hold_s: float = 3.0
    bwe_held_increase_factor_per_s: float = 1.04
    bwe_recovery_cap_multiplier: float = 2.0

    def loss_bwe_config(self) -> LossBweConfig:
        """The shared loss-based estimator parameterised by this config."""
        return LossBweConfig(
            increase_threshold=self.bwe_loss_increase_threshold,
            decrease_threshold=self.loss_tolerance,
            decrease_factor=self.bwe_loss_decrease_factor,
            increase_factor_per_s=self.bwe_increase_factor_per_s,
            receive_rate_floor_multiplier=self.bwe_receive_floor_multiplier,
            held_hold_s=self.bwe_held_hold_s,
            held_increase_factor_per_s=self.bwe_held_increase_factor_per_s,
            recovery_cap_multiplier=self.bwe_recovery_cap_multiplier,
            min_bitrate_bps=self.min_bitrate_bps,
            max_bitrate_bps=self.max_bitrate_bps,
        )


class FBRAController(RateController):
    """Stepwise, FEC-probing media-rate controller (Zoom-like)."""

    def __init__(self, config: FBRAConfig | None = None) -> None:
        cfg = config or FBRAConfig()
        super().__init__(cfg)
        self.config: FBRAConfig = cfg
        self._loss_bwe = LossBasedBwe(cfg.loss_bwe_config(), start_bitrate_bps=cfg.start_bitrate_bps)
        self._probe_active = False
        self._next_probe_at = cfg.probe_interval_s
        self._probe_ends_at = 0.0
        self._probe_clean = True
        self._overshoot_started_at: float | None = None
        #: True while recovering from a congestion-induced backoff; only in
        #: this mode may probing push the rate above the nominal maximum
        #: (the post-disruption overshoot the paper measures).
        self._recovery_mode = False
        #: Set to False to disable probing entirely (ablation hook).
        self.probing_enabled = True

    # ----------------------------------------------------------------- API
    def on_feedback(self, report: FeedbackReport, now: float) -> float:
        cfg = self.config
        self._loss_bwe.set_bounds(cfg.min_bitrate_bps, self._overshoot_ceiling())
        estimate = self._loss_bwe.on_report(report, now)
        # Loss-congestion is the shared machine's decreasing state (FEC masks
        # everything below ``loss_tolerance``); delay stays a separate check.
        congested = (
            self._loss_bwe.state == "decreasing"
            or report.queueing_delay_s > cfg.delay_tolerance_s
        )

        if congested:
            # FEC could not mask the congestion: track the delivered rate.
            # A delivered rate is trusted -- including above the current
            # target; re-basing on favourable windows is part of Zoom's
            # measured aggression -- unless the window is application-
            # limited (delivered far below both the loss estimate and the
            # target; 0.5 is GCC's near-capacity discriminator).  Then the
            # loss estimate stands in, capped at the current target so a
            # stale-high estimate (delay congestion with FEC-masked loss)
            # can never raise or pin the rate: successive congested reports
            # compound the target down until the delivered rate is trusted.
            self._probe_clean = False
            delivered = report.receive_rate_bps
            floor = min(estimate, self._target_bps)
            base = delivered if delivered >= 0.5 * floor else floor
            self._target_bps = self._clamp(cfg.backoff_factor * base)
            self._probe_active = False
            self._next_probe_at = now + cfg.probe_interval_s
            self._overshoot_started_at = None
            if self._target_bps < 0.7 * self.config.max_bitrate_bps:
                # A genuine constraint pushed us well below nominal: the
                # subsequent recovery is allowed to overshoot while probing.
                self._recovery_mode = True
            return self._target_bps

        if not self.probing_enabled:
            # Without probing the controller only creeps upward and never
            # overshoots its nominal rate (ablation: Zoom loses both its
            # post-disruption burstiness and its aggressiveness).
            self._target_bps = min(self._target_bps * 1.01, self.config.max_bitrate_bps)
            self._target_bps = max(self._target_bps, self.config.min_bitrate_bps)
            return self._target_bps

        if self._probe_active:
            if now >= self._probe_ends_at:
                self._probe_active = False
                self._next_probe_at = now + cfg.probe_interval_s
                if self._probe_clean:
                    # Absorb the successfully probed redundancy into media.
                    step = self._target_bps * cfg.probe_fec_ratio * cfg.probe_absorb_factor
                    ceiling = self._overshoot_ceiling()
                    self._target_bps = min(self._target_bps + step, ceiling)
                    if self._target_bps >= self.config.max_bitrate_bps:
                        if self._overshoot_started_at is None:
                            self._overshoot_started_at = now
        else:
            if now >= self._next_probe_at and self._target_bps < self._overshoot_ceiling():
                self._probe_active = True
                self._probe_clean = True
                self._probe_ends_at = now + cfg.probe_duration_s

        # Decay back toward nominal once the overshoot phase has lasted long
        # enough (the 'settling' the paper sees ~2 minutes after recovery).
        if (
            self._overshoot_started_at is not None
            and now - self._overshoot_started_at > cfg.overshoot_hold_s
            and self._target_bps > self.config.max_bitrate_bps
        ):
            self._target_bps = max(
                self.config.max_bitrate_bps,
                self._target_bps * (1.0 - cfg.overshoot_decay_per_s * report.effective_interval()),
            )
            if self._target_bps <= self.config.max_bitrate_bps * 1.01:
                # Settled back to nominal: the recovery episode is over.
                self._recovery_mode = False
                self._overshoot_started_at = None

        self._target_bps = max(self._target_bps, self.config.min_bitrate_bps)
        return self._target_bps

    def fec_overhead_ratio(self, now: float) -> float:
        """Extra FEC traffic (fraction of media rate) currently being sent.

        Two components: the short probe bursts, and -- while the controller's
        target exceeds the encoder's nominal rate during a post-disruption
        recovery -- sustained redundancy that realises the overshoot on the
        wire (the paper observes Zoom sending well above its steady-state
        rate for up to two minutes after a disruption, Figure 4a).
        """
        if not self.probing_enabled:
            return 0.0
        ratio = 0.0
        if self._probe_active:
            ratio += self.config.probe_fec_ratio
        if self._target_bps > self.config.max_bitrate_bps:
            ratio += self._target_bps / self.config.max_bitrate_bps - 1.0
        return ratio

    @property
    def loss_estimate_bps(self) -> float:
        """The loss-based bandwidth estimate anchoring the backoff base."""
        return self._loss_bwe.estimate_bps

    def reset(self, bitrate_bps: float | None = None) -> None:
        super().reset(bitrate_bps)
        self._loss_bwe.reset(self._target_bps)
        # A reset ends any in-flight probe episode and recovery overshoot:
        # the call sites (re-join, layout-derived ceiling clamps) use it to
        # pin the rate, and a latched _recovery_mode would let the next
        # clean probe push straight back above the new ceiling with
        # sustained FEC padding the gap.
        self._probe_active = False
        self._probe_clean = True
        self._overshoot_started_at = None
        self._recovery_mode = False

    # ------------------------------------------------------------- helpers
    def _overshoot_ceiling(self) -> float:
        """Highest rate probing may reach.

        In steady state the ceiling is the nominal maximum; while recovering
        from a congestion episode probing may overshoot it by
        ``overshoot_factor`` (Figure 4a of the paper).
        """
        if self._recovery_mode:
            return self.config.max_bitrate_bps * self.config.overshoot_factor
        return self.config.max_bitrate_bps

    def _clamp(self, value: float) -> float:
        # Unlike the base class, FBRA may temporarily exceed the nominal
        # maximum while probing (the overshoot the paper measures), so only
        # the overshoot ceiling bounds it from above.
        return min(max(value, self.config.min_bitrate_bps), self._overshoot_ceiling())
