"""Common interfaces for media-rate congestion controllers.

Every VCA sender (and every server-side per-receiver estimator) owns a
:class:`RateController`.  The receiver side of an RTP session periodically
summarises what it observed -- receive rate, loss fraction, an estimate of
queueing delay above the path baseline, and round-trip time -- into a
:class:`FeedbackReport` which travels back to the sender as an RTCP packet.
The controller turns the stream of reports into a target media bitrate that
the encoder then realises.

The interface is deliberately identical for all VCA models so experiments can
swap controllers (this is the hook the ablation benchmarks use).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

__all__ = ["FeedbackReport", "RateControllerConfig", "RateController"]


@dataclass
class FeedbackReport:
    """Receiver-side observations for one feedback interval.

    Attributes
    ----------
    timestamp:
        Simulation time at which the report was generated (receiver clock).
    interval_s:
        Length of the observation window.
    receive_rate_bps:
        Media goodput observed during the window (all media packets,
        including FEC), in bits per second.
    loss_fraction:
        Fraction of expected RTP packets that never arrived in the window.
    queueing_delay_s:
        Estimated standing queueing delay: the smoothed one-way delay minus
        the minimum one-way delay observed on the path.  This is the signal
        delay-based controllers (GCC) react to.
    delay_gradient_s:
        Change in smoothed one-way delay since the previous report; positive
        values indicate a growing queue.
    rtt_s:
        Round-trip time estimate available to the sender when the report is
        consumed.
    packets_expected / packets_received:
        Raw counts backing ``loss_fraction``.
    """

    timestamp: float
    interval_s: float
    receive_rate_bps: float
    loss_fraction: float
    queueing_delay_s: float
    delay_gradient_s: float = 0.0
    rtt_s: float = 0.05
    packets_expected: int = 0
    packets_received: int = 0

    #: Fallback observation window used when a report carries no interval
    #: (e.g. the very first report of a stream): the nominal RTCP cadence.
    DEFAULT_INTERVAL_S = 0.25

    def effective_interval(self, default_s: float | None = None) -> float:
        """The observation window, falling back to the nominal RTCP cadence.

        Every controller needs this guard (a zero-length window would stall
        multiplicative ramps); it lives here so the fallback is defined once.
        """
        if self.interval_s > 0:
            return self.interval_s
        return default_s if default_s is not None else self.DEFAULT_INTERVAL_S


@dataclass
class RateControllerConfig:
    """Bounds shared by all media-rate controllers."""

    #: Lowest bitrate the controller will ever request (VCAs keep sending a
    #: minimal stream even under severe constraint).
    min_bitrate_bps: float = 100_000.0
    #: The nominal (unconstrained) operating point of the VCA.
    max_bitrate_bps: float = 1_500_000.0
    #: Bitrate used before any feedback arrives.
    start_bitrate_bps: float = 600_000.0


class RateController(abc.ABC):
    """Abstract sender-side media-rate controller."""

    def __init__(self, config: RateControllerConfig) -> None:
        self.config = config
        self._target_bps = float(config.start_bitrate_bps)

    # ------------------------------------------------------------------ API
    @property
    def target_bitrate_bps(self) -> float:
        """Current media target bitrate in bits per second."""
        return self._target_bps

    @abc.abstractmethod
    def on_feedback(self, report: FeedbackReport, now: float) -> float:
        """Consume a feedback report and return the new target bitrate."""

    def on_local_loss(self, now: float) -> None:  # pragma: no cover - optional hook
        """Hook for locally observed drops (e.g. the sender's own uplink queue)."""

    def fec_overhead_ratio(self, now: float) -> float:
        """Fraction of *additional* FEC traffic to send on top of media.

        Most controllers send no proactive FEC; the Zoom-style FBRA
        controller overrides this to implement redundancy-based probing.
        """
        return 0.0

    # ------------------------------------------------------------- helpers
    def _clamp(self, value: float) -> float:
        return min(max(value, self.config.min_bitrate_bps), self.config.max_bitrate_bps)

    def reset(self, bitrate_bps: float | None = None) -> None:
        """Reset to the start bitrate (used when a client re-joins a call)."""
        self._target_bps = float(
            bitrate_bps if bitrate_bps is not None else self.config.start_bitrate_bps
        )
