"""Congestion-control substrate.

The paper attributes most of the differences it measures between Zoom, Meet
and Teams to their *proprietary congestion control*.  This package provides
behavioural models of each family of algorithms, plus the transport-level
controllers used by the competing applications:

* :class:`~repro.cc.gcc.GCCController` -- Google Congestion Control
  (delay-gradient plus loss), the algorithm WebRTC implements and that Meet
  and the browser-based Teams client use.
* :class:`~repro.cc.fbra.FBRAController` -- FEC-probing rate adaptation in
  the style of Nagy et al., which the paper conjectures explains Zoom's
  redundant-data probing and aggressive link sharing.
* :class:`~repro.cc.teams.TeamsController` -- the conservative, slowly
  ramping controller that reproduces Teams' measured recovery and
  link-sharing behaviour.
* :class:`~repro.cc.tcp_cubic.CubicState` -- TCP CUBIC window dynamics used
  by the iPerf3 and Netflix competitor models.
* :class:`~repro.cc.quic_cc.QuicCubicState` -- the QUIC variant used by the
  YouTube competitor model.

All media controllers share :class:`~repro.cc.loss_bwe.LossBasedBwe`, the
held/increasing/decreasing loss state machine with a bounded recovery window;
its constants are jointly calibrated against the paper's competition figures
by :mod:`repro.calibrate`.
"""

from repro.cc.base import FeedbackReport, RateController, RateControllerConfig
from repro.cc.fbra import FBRAConfig, FBRAController
from repro.cc.gcc import GCCConfig, GCCController
from repro.cc.loss_bwe import LossBasedBwe, LossBweConfig
from repro.cc.quic_cc import QuicCubicState
from repro.cc.tcp_cubic import CubicConfig, CubicState
from repro.cc.teams import TeamsCCConfig, TeamsController

__all__ = [
    "FeedbackReport",
    "RateController",
    "RateControllerConfig",
    "LossBasedBwe",
    "LossBweConfig",
    "GCCController",
    "GCCConfig",
    "FBRAController",
    "FBRAConfig",
    "TeamsController",
    "TeamsCCConfig",
    "CubicState",
    "CubicConfig",
    "QuicCubicState",
]
