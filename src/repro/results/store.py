"""The content-addressed scenario/campaign result store.

One store is a directory of small JSON files, one per cached work unit::

    <root>/
      objects/<key[:2]>/<key>.json    one cached metrics mapping per key

Keys come from :func:`repro.results.fingerprint.result_key`: they hash the
work-unit payload, the repetition seed and the code-version fingerprint, so
a spec edit re-keys exactly the edited unit while a calibration-constants or
schema-version change re-keys everything.

Determinism contract
--------------------

Metrics pass through :meth:`ResultStore.normalize` (a canonical-JSON round
trip) on *both* the write path and the fresh-execution path, so a merged
campaign result is byte-identical whether each unit came from the store or
from a simulation -- floats round-trip exactly through JSON's repr encoding,
and key order is canonicalised.  Corrupted or foreign entries (bad JSON,
schema mismatch, key mismatch) are discarded and re-executed, never trusted.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Mapping, Optional, Union

from repro.core.fsutil import atomic_write_text, sweep_stale_tmp
from repro.results import fingerprint
from repro.results.fingerprint import canonical_json

__all__ = ["ResultStore", "resolve_store", "store_from_env"]

#: Environment variable naming a store directory for store-aware callers
#: (the benchmark harness, CI jobs) that have no CLI flag of their own.
STORE_ENV_VAR = "REPRO_RESULT_STORE"


class ResultStore:
    """Content-addressed on-disk cache of campaign work-unit metrics.

    The store is append-mostly and safe to share between processes: entries
    are written atomically (``os.replace`` of a same-directory temp file) and
    reads validate before trusting.  Hit/miss/put counters make cache
    behaviour assertable in tests and reportable by CLIs.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.discarded = 0
        #: Orphaned ``*.tmp<pid>`` files (a writer crashed between fsync and
        #: rename) collected on open; only files older than the safety age
        #: are touched, so a concurrent writer's in-flight temp survives.
        self.swept_tmp = sweep_stale_tmp(self.root / "objects")

    # ------------------------------------------------------------- layout
    def object_path(self, key: str) -> Path:
        """On-disk path of one entry (the chaos harness corrupts these)."""
        return self.root / "objects" / key[:2] / f"{key}.json"

    # Backwards-compatible alias (pre-dates the public accessor).
    _object_path = object_path

    def reset_counters(self) -> None:
        self.hits = self.misses = self.puts = self.discarded = 0

    @staticmethod
    def normalize(metrics: Mapping[str, Any]) -> dict[str, Any]:
        """Canonical-JSON round trip applied to cached *and* fresh metrics."""
        return json.loads(canonical_json(dict(metrics)))

    # -------------------------------------------------------------- read
    def get(self, key: str) -> Optional[dict[str, Any]]:
        """The cached metrics for ``key``, or ``None`` on miss.

        Anything that fails validation -- unparsable JSON, a different
        schema version, an entry whose recorded key does not match its
        filename, a non-mapping metrics payload -- is deleted and treated
        as a miss, so a corrupted store degrades to re-execution.
        """
        path = self.object_path(key)
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self._discard(path)
            self.misses += 1
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("schema") != fingerprint.STORE_SCHEMA_VERSION
            or entry.get("key") != key
            or not isinstance(entry.get("metrics"), dict)
        ):
            self._discard(path)
            self.misses += 1
            return None
        self.hits += 1
        return entry["metrics"]

    def _discard(self, path: Path) -> None:
        self.discarded += 1
        try:
            path.unlink()
        except OSError:  # pragma: no cover - unlink race / read-only store
            pass

    # ------------------------------------------------------------- write
    def put(self, key: str, metrics: Mapping[str, Any], meta: Optional[Mapping[str, Any]] = None) -> dict[str, Any]:
        """Store one work unit's metrics; returns the normalized mapping.

        ``meta`` is free-form provenance (condition name, seed, duration)
        kept for humans inspecting the store; it never affects lookups.
        """
        normalized = self.normalize(metrics)
        entry = {
            "schema": fingerprint.STORE_SCHEMA_VERSION,
            "key": key,
            "metrics": normalized,
            "meta": dict(meta) if meta else {},
        }
        path = self.object_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Torn-write safety: flush + fsync the temp file *before* the atomic
        # rename, so a crash (or SIGKILL) can never publish a half-written
        # entry under the final name -- the worst case is a stale ``.tmp``
        # file, which lookups never read, which cannot shadow a later good
        # write, and which the open-time sweep collects once it is old
        # enough.  The directory fsync persists the rename itself.
        atomic_write_text(
            path, json.dumps(entry, indent=2, sort_keys=True) + "\n", fsync_dir=True
        )
        self.puts += 1
        return normalized

    # ------------------------------------------------------------ inspect
    def keys(self) -> list[str]:
        """Every key currently stored (sorted; no validation)."""
        objects = self.root / "objects"
        if not objects.is_dir():
            return []
        return sorted(p.stem for p in objects.glob("*/*.json"))

    def __len__(self) -> int:
        return len(self.keys())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResultStore({str(self.root)!r}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses}, puts={self.puts})"
        )


def resolve_store(
    store: Union["ResultStore", str, Path, None]
) -> Optional[ResultStore]:
    """Accept a :class:`ResultStore`, a directory path, or ``None``."""
    if store is None or isinstance(store, ResultStore):
        return store
    return ResultStore(store)


def store_from_env() -> Optional[ResultStore]:
    """A store rooted at ``$REPRO_RESULT_STORE``, or ``None`` when unset."""
    root = os.environ.get(STORE_ENV_VAR, "").strip()
    return ResultStore(root) if root else None
