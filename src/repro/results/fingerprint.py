"""Content-addressed result keys and the code-version fingerprint.

A cached simulation result is only reusable while everything that shaped it
is unchanged: the work-unit payload (a scenario spec, a capacity-sweep grid
cell ...), the per-repetition seed, and the *code version* of the model.
The model's externally calibrated behaviour is pinned by the committed
competition constants (:mod:`repro.calibrate.constants`), so the fingerprint
hashes the **active constant set** together with a store schema version:

* editing any calibration constant changes the fingerprint, invalidating
  every cached result at once (the constants feed every VCA simulation), and
* bumping :data:`STORE_SCHEMA_VERSION` does the same when the stored payload
  format itself changes.

Keys are hex SHA-256 digests of a canonical JSON rendering, so they are
stable across processes, platforms and dict insertion orders.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Optional

__all__ = [
    "STORE_SCHEMA_VERSION",
    "canonical_json",
    "code_fingerprint",
    "payload_hash",
    "result_key",
]

#: Bump when the stored entry format (or the meaning of cached metrics)
#: changes incompatibly; every existing cache entry becomes a miss.
STORE_SCHEMA_VERSION = 1


def canonical_json(payload: Any) -> str:
    """Deterministic JSON rendering: sorted keys, no whitespace.

    Raises ``TypeError`` for payloads JSON cannot express -- callers treat
    such work units as uncacheable rather than guessing at a hash.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def code_fingerprint() -> str:
    """Fingerprint of the model version cached results were produced by.

    Derived from the *active* competition constants (the committed set in
    normal runs; a sweep candidate while one is activated) plus the store
    schema version.  Read lazily on every call so a constants edit or an
    activated candidate is picked up immediately.
    """
    # Local import: repro.results must stay importable from the core layer
    # without dragging the calibration package in at module-import time.
    from repro.calibrate.constants import active_constants

    payload = {
        "schema": STORE_SCHEMA_VERSION,
        "constants": active_constants().as_dict(),
    }
    return _digest(canonical_json(payload))[:16]


def payload_hash(payload: Any) -> str:
    """Content hash of one work-unit payload (no seed, no fingerprint).

    This is what the CI cache manifest records per scenario: it changes
    exactly when the spec content changes.
    """
    return _digest(canonical_json(payload))


def result_key(payload: Any, seed: int, fingerprint: Optional[str] = None) -> str:
    """The store key of one ``(payload, seed)`` work unit.

    ``fingerprint`` defaults to :func:`code_fingerprint`; passing it
    explicitly lets a campaign hash many units against one snapshot.
    """
    if fingerprint is None:
        fingerprint = code_fingerprint()
    return _digest(
        canonical_json({"fingerprint": fingerprint, "payload": payload, "seed": int(seed)})
    )
