"""Content-addressed result store for incremental campaign sweeps.

For a 100+-cell scenario grid, re-simulating every cell on every invocation
is the bottleneck -- one scenario repetition costs seconds, a spec edit
costs the whole grid.  This package makes sweeps incremental:

* :mod:`repro.results.fingerprint` derives a stable key per work unit from
  its payload (e.g. a full :class:`~repro.netem.scenarios.ScenarioSpec`),
  the repetition seed and a code-version fingerprint (committed calibration
  constants + store schema version), and
* :mod:`repro.results.store` persists one JSON entry per key, validated on
  read, with a determinism contract: merged warm/cold campaign results are
  byte-identical.

:func:`repro.core.campaign.run_campaign` consults a store before
dispatching work units to the process pool, so ``scenario_sweep``,
``run_capacity_sweep`` and ``run_participant_sweep`` re-execute only cache
misses.
"""

from repro.results.fingerprint import (
    STORE_SCHEMA_VERSION,
    canonical_json,
    code_fingerprint,
    payload_hash,
    result_key,
)
from repro.results.store import ResultStore, resolve_store, store_from_env

__all__ = [
    "STORE_SCHEMA_VERSION",
    "canonical_json",
    "code_fingerprint",
    "payload_hash",
    "result_key",
    "ResultStore",
    "resolve_store",
    "store_from_env",
]
