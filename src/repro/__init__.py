"""repro: an emulation-based reproduction of the IMC 2021 VCA measurement study.

The package reproduces "Measuring the Performance and Network Utilization of
Popular Video Conferencing Applications" (MacMillan, Mangla, Saxon, Feamster)
end to end: a packet-level network emulator stands in for the paper's
physical testbed, behavioural models stand in for the closed-source Zoom,
Google Meet and Microsoft Teams clients, and a measurement harness
regenerates every table and figure of the evaluation.

Sub-packages
------------
``repro.net``
    Discrete-event network emulation (links, queues, shaping, topologies).
``repro.cc``
    Congestion-control models: GCC, FEC-probing (Zoom-like), Teams-like,
    TCP CUBIC and QUIC CUBIC.
``repro.media``
    Codec model, talking-head source, adaptive encoders, simulcast, SVC,
    layouts and freeze detection.
``repro.rtp``
    RTP packetization, RTCP feedback, receive-side statistics, FEC and
    signalling.
``repro.vca``
    The application models: clients, media servers, calls and per-VCA
    profiles.
``repro.apps``
    Competing applications: iPerf3 (TCP CUBIC), Netflix-like and
    YouTube-like streaming.
``repro.core``
    The measurement harness: profiles, capture, WebRTC-style statistics,
    metrics, aggregation and experiment running.
``repro.experiments``
    Drivers that regenerate each table and figure of the paper.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
