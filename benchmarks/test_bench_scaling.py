"""Multi-party scaling benchmark: wall-clock per simulated second.

The paper's multi-party results (Fig 15) and the competition grids need
many-participant gallery calls; this benchmark measures how expensive one
simulated second of an N-party gallery call is as N grows, and gates the
event-driven media pipeline's speedup over the PR 1 engine.

Baseline
--------

The baseline is a faithful in-tree replica of the PR 1 pipeline, assembled
from the escape hatches this PR keeps alive (the same pattern
``test_bench_engine`` uses for the seed engine):

* ``CallConfig(polled=True)`` -- 30 Hz ``PeriodicTask`` encoder polling,
  per-packet ``host.send``, the verbatim PR 1 packetizer and stream-receiver
  cost profiles (``LegacyPacketizer`` / ``LegacyStreamReceiver``), and the
  per-packet ``_should_forward`` server loop; and
* ``build_access_topology(fused=False)`` -- hop-by-hop delay pipes through
  the core router instead of the source-routed single-event ``DelayBus``.

Both pipelines produce byte-identical traffic (see
``tests/test_fastpath_equiv.py``), so the ratio measures scheduling and
dispatch cost only.

Regression gate
---------------

``MIN_FIVE_PARTY_SPEEDUP`` asserts the event-driven pipeline's measured
floor.  On top of it, the recorded baseline
(``benchmarks/baselines/BENCH_scaling_baseline.json``) gates *regressions*:
the smoke job fails if the measured five-party speedup falls below half the
recorded one (i.e. the event pipeline regressed >2x relative to the polled
baseline, which cancels machine-speed differences out of the comparison).

Honest note: the tentpole aimed for >=3x on this scenario; the measured
speedup on an unconstrained five-party gallery call is ~1.45x interleaved
(recorded in the baseline JSON), with 1.8x fewer heap events.  PR 1 already
moved the per-packet event machinery to the analytic fast path, so the
remaining cost is per-packet *semantic* work (receiver statistics,
per-receiver copies, shaped-link serialization for the measured client)
that both pipelines necessarily share; the event-driven pipeline's
structural win is the heap-event reduction and per-train amortization,
which grows with fan-out.
"""

from __future__ import annotations

import os
import time

import pytest

from bench_io import load_baseline, record_bench_result
from conftest import BENCH_DURATION_S

from repro.core.capture import PacketCapture
from repro.net.simulator import Simulator
from repro.net.topology import build_access_topology
from repro.vca import Call, CallConfig

#: Participant counts of the scaling sweep (the paper's gallery sweeps stop
#: at eight participants; 16 probes the architecture headroom).
PARTICIPANT_COUNTS = (2, 5, 9, 16)

#: Required five-party speedup of the event-driven pipeline over the PR 1
#: replica, scaled by ``REPRO_ENGINE_BENCH_MARGIN`` like the engine
#: microbenchmarks so shared CI runners do not flake.
_MARGIN = float(os.environ.get("REPRO_ENGINE_BENCH_MARGIN", "1.0"))
MIN_FIVE_PARTY_SPEEDUP = 1.25 * _MARGIN

#: Timing repetitions (best-of): enough to shed scheduler noise locally
#: without tripling CI time.
ROUNDS = int(os.environ.get("REPRO_BENCH_SCALING_ROUNDS", "3"))


def _run_gallery_call(n_participants: int, duration_s: float, pr1_baseline: bool, seed: int = 7):
    """One N-party meet gallery call; returns (wall_s, events, sim_seconds)."""
    sim = Simulator(seed=seed)
    names = tuple(f"C{i + 1}" for i in range(n_participants))
    topo = build_access_topology(sim, client_names=names, fused=not pr1_baseline)
    capture = PacketCapture(sim)
    capture.attach(topo.host("C1"))
    call = Call(
        sim,
        [topo.host(name) for name in names],
        topo.host("S"),
        CallConfig(vca="meet", seed=seed, polled=pr1_baseline),
    )
    start = time.perf_counter()
    call.start()
    sim.run(until=duration_s)
    call.stop()
    sim.run(until=duration_s + 2.0)
    wall = time.perf_counter() - start
    return wall, sim.events_processed, duration_s + 2.0


def _best_wall(n: int, duration: float, pr1_baseline: bool) -> tuple[float, int, float]:
    best = None
    for _ in range(ROUNDS):
        result = _run_gallery_call(n, duration, pr1_baseline)
        if best is None or result[0] < best[0]:
            best = result
    assert best is not None
    return best


def test_bench_scaling_gallery_wall_clock():
    """Wall-clock per simulated second at 2/5/9/16 participants (event mode)."""
    duration = BENCH_DURATION_S
    rows = {}
    for n in PARTICIPANT_COUNTS:
        wall, events, sim_s = _best_wall(n, duration, pr1_baseline=False)
        rows[n] = {
            "participants": n,
            "wall_s": wall,
            "sim_s": sim_s,
            "wall_per_sim_s": wall / sim_s,
            "events": events,
            "events_per_wall_s": events / wall,
        }
        print(
            f"\nscaling n={n:2d}: {wall:.3f}s wall for {sim_s:.0f}s sim "
            f"({wall / sim_s * 1000:.1f} ms/sim-s, {events:,} events)"
        )
    record_bench_result(
        "scaling",
        "test_bench_scaling_gallery_wall_clock",
        duration_s=duration,
        rows={str(n): row for n, row in rows.items()},
    )
    # Scaling sanity: a 16-party call must stay within a loose superlinear
    # envelope of the 2-party call (fan-out grows ~O(N^2) in packet count).
    assert rows[16]["wall_per_sim_s"] < rows[2]["wall_per_sim_s"] * 120


def test_bench_scaling_five_party_speedup_vs_pr1():
    """Event-driven vs PR 1 replica on the tentpole's five-party gallery call."""
    # The tentpole scenario is a 60 s call; REPRO_BENCH_DURATION still
    # scales it down for the CI smoke job.
    duration = BENCH_DURATION_S if "REPRO_BENCH_DURATION" in os.environ else 60.0
    # Interleave the rounds so allocator / frequency-scaling drift hits both
    # pipelines symmetrically instead of biasing whichever runs second.
    baseline_wall = event_wall = float("inf")
    baseline_events = event_events = 0
    for _ in range(ROUNDS):
        wall, baseline_events, _ = _run_gallery_call(5, duration, pr1_baseline=True)
        baseline_wall = min(baseline_wall, wall)
        wall, event_events, _ = _run_gallery_call(5, duration, pr1_baseline=False)
        event_wall = min(event_wall, wall)
    speedup = baseline_wall / event_wall
    event_reduction = baseline_events / event_events
    print(
        f"\nfive-party gallery ({duration:.0f}s sim): PR1 replica {baseline_wall:.3f}s "
        f"({baseline_events:,} events), event-driven {event_wall:.3f}s "
        f"({event_events:,} events) -> speedup {speedup:.2f}x, "
        f"{event_reduction:.2f}x fewer heap events"
    )
    record_bench_result(
        "scaling",
        "test_bench_scaling_five_party_speedup_vs_pr1",
        duration_s=duration,
        baseline_wall_s=baseline_wall,
        event_wall_s=event_wall,
        speedup=speedup,
        baseline_events=baseline_events,
        event_events=event_events,
        event_reduction=event_reduction,
    )
    # The event-driven pipeline must schedule substantially fewer heap
    # events (deterministic, unlike wall clock) and beat the PR 1 replica.
    assert event_events < baseline_events
    # Recorded-baseline regression gates, checked before the floor so a deep
    # regression reports against the committed reference:
    # 1. the event-reduction ratio is deterministic and duration-invariant,
    #    so it catches a structural regression (batching silently disabled,
    #    emission events reappearing) on any machine;
    # 2. the wall-clock ratio backstop fails a >2x perf regression of the
    #    event pipeline relative to the polled baseline (machine speed
    #    cancels out of the ratio).  The MIN_FIVE_PARTY_SPEEDUP floor below
    #    is the tighter wall-clock gate in practice.
    baseline = load_baseline("scaling").get("five_party", {})
    recorded_reduction = baseline.get("event_reduction")
    if recorded_reduction:
        assert event_reduction >= recorded_reduction * 0.8, (
            f"heap-event reduction {event_reduction:.2f}x fell below 80% of "
            f"the recorded baseline {recorded_reduction:.2f}x"
        )
    recorded = baseline.get("speedup")
    if recorded:
        assert speedup >= recorded / 2.0, (
            f"five-party event-pipeline speedup {speedup:.2f}x regressed more "
            f"than 2x vs the recorded baseline {recorded:.2f}x"
        )
    assert speedup >= MIN_FIVE_PARTY_SPEEDUP


@pytest.mark.parametrize("n", [5])
def test_bench_scaling_event_counts_deterministic(n):
    """Event totals are seed-deterministic and identical across pipelines."""
    duration = min(BENCH_DURATION_S, 20.0)
    _, events_a, _ = _run_gallery_call(n, duration, pr1_baseline=False)
    _, events_b, _ = _run_gallery_call(n, duration, pr1_baseline=False)
    assert events_a == events_b
