"""Benchmark regenerating Figure 12 (iPerf3 vs VCAs at 2 Mbps)."""

from conftest import BENCH_REPETITIONS, run_once

from repro.experiments.competition import run_vca_vs_tcp


def test_bench_fig12_iperf_shares(benchmark):
    table = run_once(
        benchmark,
        run_vca_vs_tcp,
        capacity_mbps=2.0,
        repetitions=BENCH_REPETITIONS,
        competitor_duration_s=60.0,
    )
    print("\n" + table.to_text())
    iperf_share = {(row[0], row[1]): row[2] for row in table.rows}
    # Teams is passive against TCP: iPerf3 takes well over half the link.
    assert iperf_share[("teams", "down")] > 0.5
    assert iperf_share[("teams", "up")] > 0.5
    # Zoom holds its own against TCP far better than Teams does.
    assert iperf_share[("zoom", "down")] < iperf_share[("teams", "down")]
