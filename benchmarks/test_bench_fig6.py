"""Benchmark regenerating Figure 6 (remote sender during a downlink drop)."""

from conftest import run_once

from repro.core.results import format_figure
from repro.experiments.disruption import run_remote_sender_response


def test_bench_fig6_remote_sender_response(benchmark):
    series = run_once(
        benchmark,
        run_remote_sender_response,
        drop_to_mbps=0.25,
        duration_s=180.0,
        repetitions=1,
    )
    print("\n" + format_figure("fig6 (C2 upstream bitrate while C1's downlink is disrupted)", series))

    def dip(figure):
        during = [y for x, y in zip(figure.x, figure.y) if 68 <= x <= 90]
        before = [y for x, y in zip(figure.x, figure.y) if 30 <= x <= 55]
        return (sum(during) / len(during)) / max(sum(before) / len(before), 1e-9)

    # Teams' sender backs off during the receiver's downlink drop; Meet's
    # sender keeps sending to the SFU (its simulcast copies are still needed).
    assert dip(series["teams"]) < dip(series["meet"]) + 0.15
