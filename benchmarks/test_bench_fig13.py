"""Benchmark regenerating Figure 13 (Zoom probing vs a TCP download)."""

from conftest import run_once

from repro.core.results import format_figure
from repro.experiments.competition import run_zoom_burst_trace


def test_bench_fig13_zoom_vs_iperf_trace(benchmark):
    series = run_once(
        benchmark,
        run_zoom_burst_trace,
        capacity_mbps=2.0,
        competitor_duration_s=60.0,
    )
    print("\n" + format_figure("fig13 (Zoom and iPerf3 downstream bitrate)", series))

    def mean(figure, lo, hi):
        values = [y for x, y in zip(figure.x, figure.y) if lo <= x <= hi]
        return sum(values) / max(len(values), 1)

    # Zoom keeps a substantial share of the downlink while the TCP download runs.
    assert mean(series["zoom"], 45, 90) > 0.5
