"""Recorded-target benchmarks for the competition scenario pack.

The ``competition`` pack expresses the paper's Section 5 cross-traffic
cells through the scenario API's ``workload`` axis (a competing VCA call,
bulk TCP, a streaming player sharing the measured client's access link).
These gates pin the pack's directional physics over three seeds:

* Teams stays passive -- but not starved -- against a competing Zoom call
  on the 0.5 Mbps drop-tail cell (the fig10 calibration condition, now a
  recorded share band),
* CoDel shifts downlink share from the loss-averse TCP competitor to the
  loss-tolerant VCA relative to the drop-tail control,
* a downlink-only competitor (TCP bulk, Netflix ABR) never displaces the
  measured call's uplink.

With ``REPRO_RESULT_STORE`` pointing at a warm store (the CI scenario-smoke
job) the pack re-scores from cache.  Results are emitted to
``BENCH_competition.json`` for the CI artifact.
"""

from __future__ import annotations

from typing import Any, Optional

from bench_io import record_bench_result
from conftest import BENCH_DURATION_S, run_once

from repro.experiments.scenario import WORKLOAD_SWEEP_METRICS, run_scenario_sweep
from repro.results import store_from_env

#: Repetition seeds aggregated by the shared pack sweep.
SEEDS = (0, 1, 2)

_TABLE: Optional[Any] = None


def competition_table():
    """The shared three-seed pack sweep (memoized; store-aware via the env)."""
    global _TABLE
    if _TABLE is None:
        _TABLE = run_scenario_sweep(
            tag="competition",
            duration_s=BENCH_DURATION_S,
            repetitions=len(SEEDS),
            store=store_from_env(),
        )
    return _TABLE


def _rows(table) -> dict[str, dict[str, Any]]:
    return {row[0]: dict(zip(table.columns[1:], row[1:])) for row in table.rows}


def test_bench_competition_pack_smoke(benchmark):
    """The pack runs end to end with sane competition columns everywhere."""
    table = run_once(benchmark, competition_table)
    print("\n" + table.to_text())
    rows = _rows(table)
    assert len(rows) >= 4
    for metric in WORKLOAD_SWEEP_METRICS:
        assert metric in table.columns
    for name, metrics in rows.items():
        assert 0.0 <= metrics["share_up"] <= 1.0, name
        assert 0.0 <= metrics["share_down"] <= 1.0, name
        assert metrics["competitor_down_mbps"] > 0.0, name
        assert metrics["median_up_mbps"] > 0.0, name
    record_bench_result(
        "competition",
        "pack_sweep",
        duration_s=BENCH_DURATION_S,
        rows=rows,
    )


def test_bench_teams_passive_but_not_starved_vs_zoom(benchmark):
    """The fig10 cell as a share band: Teams under 60% but above 15%."""
    rows = _rows(run_once(benchmark, competition_table))
    share = rows["competition/teams-vs-zoom-droptail"]["share_down"]
    print(f"\nteams-vs-zoom downlink share={share:.4f} (band 0.15..0.60)")
    assert share < 0.60, "Teams stopped yielding to the competing Zoom call"
    assert share > 0.15, "Teams collapsed against the competing Zoom call"
    record_bench_result(
        "competition",
        "teams_vs_zoom_share_band",
        duration_s=BENCH_DURATION_S,
        share_down=share,
    )


def test_bench_codel_shifts_share_from_tcp_to_vca(benchmark):
    """CoDel's early drops cost CUBIC more than the VCA (vs drop-tail)."""
    rows = _rows(run_once(benchmark, competition_table))
    codel = rows["competition/zoom-vs-tcp-codel"]["share_down"]
    droptail = rows["competition/zoom-vs-tcp-droptail"]["share_down"]
    print(f"\nvca share under TCP bulk: codel={codel:.4f} droptail={droptail:.4f} "
          f"gap={codel - droptail:+.4f}")
    assert codel > droptail, "CoDel no longer favours the VCA over TCP bulk"
    record_bench_result(
        "competition",
        "codel_vs_droptail_vca_share",
        duration_s=BENCH_DURATION_S,
        codel_share_down=codel,
        droptail_share_down=droptail,
        gap=codel - droptail,
    )


def test_bench_downlink_competitors_spare_the_uplink(benchmark):
    """TCP bulk and Netflix contend downstream only; the call keeps its uplink."""
    rows = _rows(run_once(benchmark, competition_table))
    tcp = rows["competition/zoom-vs-tcp-droptail"]["share_up"]
    netflix = rows["competition/netflix-vs-zoom-lte"]["share_up"]
    print(f"\nuplink share: vs tcp_bulk={tcp:.4f}, vs netflix-on-lte={netflix:.4f}")
    assert tcp > 0.8
    assert netflix > 0.8
    record_bench_result(
        "competition",
        "uplink_untouched",
        duration_s=BENCH_DURATION_S,
        share_up_vs_tcp=tcp,
        share_up_vs_netflix=netflix,
    )
