"""Recorded-target benchmarks for the population quality barometer.

A reduced population grid (12 sampled households x 2 VCAs x 2 use cases)
runs through the campaign service and pins the population-level behaviour
the barometer exists to expose:

* every cell's quality index is finite and inside [0, 1],
* the access gradient: the constrained-LTE tier's five-party index sits
  far below the fiber tier's two-party index,
* the use-case gradient: for every VCA the five-party population mean sits
  below the two-party mean (a gallery needs more than a 1:1 call),
* the committed barometer targets (``quality_index:*`` entries of
  SCENARIO_TARGETS) hold their recorded margins,
* the per-(VCA, use case) population means stay near the committed
  baseline (``benchmarks/baselines/BENCH_barometer_baseline.json``).

The grid is seed-deterministic, so the means are exact reproductions, not
statistics; the baseline gate's tolerance only absorbs intentional
calibration drift.  With ``REPRO_RESULT_STORE`` pointing at a warm store
(the CI scenario-smoke job) the whole suite re-scores from cache.  Results
are emitted to ``BENCH_barometer.json`` for the CI artifact.
"""

from __future__ import annotations

import math
import statistics
from typing import Any, Optional

from bench_io import load_baseline, record_bench_result
from conftest import BENCH_DURATION_S, run_once

from repro.barometer.campaign import run_barometer_sweep
from repro.barometer.population import tier_names
from repro.barometer.report import render_tier_scorecard, tier_scorecard
from repro.calibrate.targets import SCENARIO_TARGETS
from repro.calibrate.verify import verify_scenarios
from repro.results import store_from_env

#: Reduced population grid (seed 0 draws 5 distinct tiers).
N_HOUSEHOLDS = 12
VCAS = ("zoom", "meet")
USE_CASES = ("two-party", "five-party-gallery")

#: Absolute tolerance of the population-mean baseline gate.
BASELINE_TOLERANCE = 0.15

_TABLE: Optional[Any] = None


def barometer_table():
    """The shared population sweep (memoized; store-aware via the env var)."""
    global _TABLE
    if _TABLE is None:
        _TABLE = run_barometer_sweep(
            n_households=N_HOUSEHOLDS,
            vcas=VCAS,
            use_cases=USE_CASES,
            duration_s=BENCH_DURATION_S,
            seed=0,
            store=store_from_env(),
        )
    return _TABLE


def _rows(table) -> list[dict[str, Any]]:
    return [dict(zip(table.columns, row)) for row in table.rows]


def _mean_index(rows, **filters) -> float:
    values = [
        row["quality_index"]
        for row in rows
        if all(row[key] == value for key, value in filters.items())
    ]
    return statistics.mean(values)


def test_bench_barometer_population_sweep(benchmark):
    """The population grid completes and every index is a sane score."""
    table = run_once(benchmark, barometer_table)
    rows = _rows(table)
    assert len(rows) == N_HOUSEHOLDS * len(VCAS) * len(USE_CASES)
    for row in rows:
        assert math.isfinite(row["quality_index"]), row
        assert 0.0 <= row["quality_index"] <= 1.0, row
    print("\n" + render_tier_scorecard(table, tier_order=tier_names()))
    means = {
        f"{vca}/{case}": _mean_index(rows, vca=vca, use_case=case)
        for vca in VCAS
        for case in USE_CASES
    }
    # Recorded-baseline gate: the grid is deterministic, so a drift beyond
    # the tolerance means the simulator or a formula changed materially --
    # re-record the baseline deliberately if that was the point.
    baseline = load_baseline("barometer").get("population_sweep", {})
    recorded = baseline.get(f"duration={BENCH_DURATION_S:g}", {})
    for key, value in means.items():
        if key in recorded:
            assert abs(value - recorded[key]) <= BASELINE_TOLERANCE, (
                f"{key} population mean {value:.4f} drifted more than "
                f"{BASELINE_TOLERANCE} from the recorded {recorded[key]:.4f}"
            )
    record_bench_result(
        "barometer",
        "population_sweep",
        duration_s=BENCH_DURATION_S,
        households=N_HOUSEHOLDS,
        cells=len(rows),
        population_means=means,
        campaign=table.campaign_stats,
    )


def test_bench_barometer_access_gradient(benchmark):
    """Constrained LTE in a gallery scores far below fiber on a 1:1 call."""
    table = run_once(benchmark, barometer_table)
    rows = _rows(table)
    fiber = _mean_index(rows, tier="fiber", use_case="two-party")
    constrained = _mean_index(
        rows, tier="constrained-lte", use_case="five-party-gallery"
    )
    print(f"\nfiber two-party={fiber:.4f} constrained-lte five-party={constrained:.4f} "
          f"gap={fiber - constrained:+.4f}")
    assert fiber - constrained >= 0.2, (fiber, constrained)
    record_bench_result(
        "barometer",
        "access_gradient",
        duration_s=BENCH_DURATION_S,
        fiber_two_party=fiber,
        constrained_lte_five_party=constrained,
        gap=fiber - constrained,
    )


def test_bench_barometer_use_case_gradient(benchmark):
    """For every VCA the five-party population mean trails the two-party mean."""
    table = run_once(benchmark, barometer_table)
    rows = _rows(table)
    gaps = {}
    for vca in VCAS:
        two = _mean_index(rows, vca=vca, use_case="two-party")
        five = _mean_index(rows, vca=vca, use_case="five-party-gallery")
        gaps[vca] = two - five
        print(f"\n{vca}: two-party={two:.4f} five-party={five:.4f} gap={two - five:+.4f}")
        assert five < two - 0.02, (vca, two, five)
    record_bench_result(
        "barometer",
        "use_case_gradient",
        duration_s=BENCH_DURATION_S,
        gaps=gaps,
    )


def test_bench_barometer_targets_satisfied(benchmark):
    """The committed barometer targets hold their recorded margins."""
    targets = [
        target for target in SCENARIO_TARGETS
        if target.metric.startswith("quality_index:")
    ]
    assert len(targets) >= 2
    report = run_once(
        benchmark,
        verify_scenarios,
        duration_s=BENCH_DURATION_S,
        repetitions=3,
        store=store_from_env(),
        targets=targets,
    )
    print("\n" + "\n".join(
        f"  [{'ok  ' if row['satisfied'] else 'FAIL'}] {row['name']:38s} "
        f"value={row['value']:8.4f} {row['op']} {row['threshold']:<8g} "
        f"margin={row['margin']:+.4f}"
        for row in report["results"]
    ))
    assert report["satisfied"], report["results"]
    record_bench_result(
        "barometer",
        "barometer_targets",
        duration_s=BENCH_DURATION_S,
        satisfied=report["satisfied"],
        margins=report["margins"],
    )


def test_bench_barometer_scorecard_verdicts(benchmark):
    """The scorecard's verdict column reflects the tier gradient."""
    table = run_once(benchmark, barometer_table)
    card = tier_scorecard(table, tier_order=tier_names())
    verdicts = {
        (row[0], row[2]): row[-1] for row in card.rows
    }
    print("\n" + "\n".join(f"  {key}: {verdict}" for key, verdict in sorted(verdicts.items())))
    # Fiber sustains a two-party call outright; the constrained-LTE gallery
    # never earns a clean "yes".
    assert verdicts[("fiber", "two-party")] == "yes"
    assert verdicts[("constrained-lte", "five-party-gallery")] != "yes"
    record_bench_result(
        "barometer",
        "scorecard_verdicts",
        duration_s=BENCH_DURATION_S,
        verdicts={f"{tier}/{case}": verdict for (tier, case), verdict in verdicts.items()},
    )
