"""Benchmark regenerating Table 2 (unconstrained utilization)."""

from conftest import BENCH_DURATION_S, BENCH_REPETITIONS, run_once

from repro.experiments.static import run_unconstrained_utilization


def test_bench_table2(benchmark):
    table = run_once(
        benchmark,
        run_unconstrained_utilization,
        duration_s=BENCH_DURATION_S,
        repetitions=BENCH_REPETITIONS,
    )
    print("\n" + table.to_text())
    rates = {row[0]: (row[1], row[2]) for row in table.rows}
    # Shape checks from Table 2: Teams is the heaviest, Zoom's downstream
    # exceeds its upstream (relay-side FEC).
    assert rates["teams"][0] > rates["meet"][0]
    assert rates["teams"][0] > rates["zoom"][0]
    assert rates["zoom"][1] > rates["zoom"][0]
