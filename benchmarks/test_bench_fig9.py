"""Benchmark regenerating Figure 9 (self-competition traces)."""

from conftest import run_once

from repro.core.results import format_figure
from repro.experiments.competition import run_self_competition_timeseries


def test_bench_fig9_self_competition(benchmark):
    result = run_once(
        benchmark,
        run_self_competition_timeseries,
        capacity_mbps=0.5,
        competitor_duration_s=60.0,
    )
    for vca, series in result.items():
        print("\n" + format_figure(f"fig9 ({vca} vs {vca}, upstream)", series))

    def share_during_competition(series):
        def mean(figure, lo, hi):
            values = [y for x, y in zip(figure.x, figure.y) if lo <= x <= hi]
            return sum(values) / max(len(values), 1)

        incumbent = mean(series["incumbent"], 45, 90)
        competitor = mean(series["competitor"], 45, 90)
        return incumbent / max(incumbent + competitor, 1e-9)

    # Two Meet calls share the 0.5 Mbps link more evenly than two Zoom calls
    # (Figure 9b vs 9a: Zoom is not even fair to itself).
    meet_balance = abs(share_during_competition(result["meet"]) - 0.5)
    zoom_balance = abs(share_during_competition(result["zoom"]) - 0.5)
    assert meet_balance <= zoom_balance + 0.15
