"""Benchmarks regenerating Figure 2 (encoding parameters vs capacity)."""

from conftest import BENCH_DURATION_S, BENCH_REPETITIONS, run_once

from repro.core.results import format_figure
from repro.experiments.static import run_encoding_parameters

LEVELS = (0.3, 0.5, 1.0, 2.0)


def test_bench_fig2_downlink_encoding(benchmark):
    result = run_once(
        benchmark,
        run_encoding_parameters,
        direction="down",
        levels_mbps=LEVELS,
        duration_s=BENCH_DURATION_S,
        repetitions=BENCH_REPETITIONS,
    )
    for metric, series in result.items():
        print("\n" + format_figure(f"fig2 down - {metric}", series))
    meet_width = result["width"]["meet"]
    # Received width degrades as the downlink tightens (Figure 2c).
    assert meet_width.y[0] <= meet_width.y[-1]


def test_bench_fig2_uplink_encoding(benchmark):
    result = run_once(
        benchmark,
        run_encoding_parameters,
        direction="up",
        levels_mbps=LEVELS,
        duration_s=BENCH_DURATION_S,
        repetitions=BENCH_REPETITIONS,
    )
    for metric, series in result.items():
        print("\n" + format_figure(f"fig2 up - {metric}", series))
    meet_qp = result["qp"]["meet"]
    # Sent QP rises as the uplink tightens (Figure 2d).
    assert meet_qp.y[0] >= meet_qp.y[-1]
