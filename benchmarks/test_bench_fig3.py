"""Benchmark regenerating Figure 3 (freezes and FIR counts)."""

from conftest import BENCH_DURATION_S, BENCH_REPETITIONS, run_once

from repro.core.results import format_figure
from repro.experiments.static import run_video_freezes


def test_bench_fig3_freezes_and_firs(benchmark):
    result = run_once(
        benchmark,
        run_video_freezes,
        levels_mbps=(0.3, 0.5, 2.0),
        duration_s=BENCH_DURATION_S,
        repetitions=BENCH_REPETITIONS,
    )
    print("\n" + format_figure("fig3a (freeze ratio vs downlink)", result["freeze_ratio"]))
    print("\n" + format_figure("fig3b (FIR count vs uplink)", result["fir_count"]))
    meet_freeze = result["freeze_ratio"]["meet"]
    # Freezes increase as the downlink degrades (Figure 3a).
    assert meet_freeze.y[0] >= meet_freeze.y[-1]
    # Teams-Chrome produces FIRs at very low uplink capacity (Figure 3b).
    assert result["fir_count"]["teams-chrome"].y[0] >= 1.0
