"""Benchmark regenerating Figure 14 (Zoom vs Netflix at 0.5 Mbps)."""

from conftest import run_once

from repro.core.results import format_figure
from repro.experiments.competition import run_vca_vs_streaming


def test_bench_fig14_zoom_vs_netflix(benchmark):
    series = run_once(
        benchmark,
        run_vca_vs_streaming,
        vca="zoom",
        app="netflix",
        capacity_mbps=0.5,
        competitor_duration_s=60.0,
    )
    traces = {k: v for k, v in series.items() if k in ("zoom", "netflix")}
    print("\n" + format_figure("fig14a (downstream bitrate)", traces))
    connections = series["tcp_connections_total"].y[-1]
    print(f"fig14b: Netflix opened {connections:.0f} TCP connections in total")

    def mean(figure, lo, hi):
        values = [y for x, y in zip(figure.x, figure.y) if lo <= x <= hi]
        return sum(values) / max(len(values), 1)

    # Zoom starves the streaming player despite Netflix's parallel connections.
    assert mean(series["zoom"], 45, 90) > mean(series["netflix"], 45, 90)
    assert connections >= 1
