"""Machine-readable benchmark result emission.

Each perf benchmark records its measurements into a ``BENCH_<suite>.json``
file (one JSON object per suite, keyed by test name) so the performance
trajectory is tracked across PRs instead of living only in pytest stdout.
CI uploads the files as workflow artifacts; ``benchmarks/baselines/`` holds
the recorded reference numbers the regression gates compare against.

The output directory defaults to the current working directory and can be
redirected with ``REPRO_BENCH_RESULTS_DIR``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any

__all__ = ["record_bench_result", "load_baseline"]


def _results_dir() -> Path:
    return Path(os.environ.get("REPRO_BENCH_RESULTS_DIR", "."))


def record_bench_result(suite: str, test_name: str, **payload: Any) -> Path:
    """Merge one test's measurements into ``BENCH_<suite>.json``.

    The file holds ``{test_name: {...payload, "recorded_at": epoch}}``;
    re-running a test overwrites its own entry and leaves the others alone,
    so a partial benchmark run still produces a coherent artifact.
    """
    path = _results_dir() / f"BENCH_{suite}.json"
    try:
        existing = json.loads(path.read_text())
        if not isinstance(existing, dict):
            existing = {}
    except (FileNotFoundError, json.JSONDecodeError):
        existing = {}
    existing[test_name] = {**payload, "recorded_at": time.time()}
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")
    return path


def load_baseline(suite: str) -> dict[str, Any]:
    """Load the committed reference numbers for a suite (empty if none)."""
    path = Path(__file__).resolve().parent / "baselines" / f"BENCH_{suite}_baseline.json"
    try:
        data = json.loads(path.read_text())
    except (FileNotFoundError, json.JSONDecodeError):
        return {}
    return data if isinstance(data, dict) else {}
