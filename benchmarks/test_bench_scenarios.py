"""Recorded-target benchmarks for the netem scenario library.

Unlike the figure benchmarks (which pin the paper's numbers), these pin the
*physics* the netem subsystem adds -- and since PR 5 they do it through the
committed :data:`repro.calibrate.targets.SCENARIO_TARGETS`: every
directional assertion (bursty loss at equal mean freezes video where i.i.d.
does not, a trace-driven LTE uplink keeps the controller re-deciding where
static shaping does not, CoDel tames the standing queue that drop-tail
bufferbloats) is a recorded threshold scored with a margin, so a regression
that shrinks an effect without flipping its sign still fails loudly.

All target tests share one :func:`repro.calibrate.verify.verify_scenarios`
run (three seeds, aggregated as means) so each referenced scenario is
simulated at most once per session -- or not at all when
``REPRO_RESULT_STORE`` points at a warm result store, which is how the CI
scenario-smoke job re-scores an unchanged scenario pack from cache.
Margins hold at both ``REPRO_BENCH_DURATION=10`` and the default 45.
Results are emitted to ``BENCH_scenarios.json`` for the CI artifact.
"""

from __future__ import annotations

from typing import Any, Optional

from bench_io import record_bench_result
from conftest import BENCH_DURATION_S, run_once

from repro.calibrate.targets import SCENARIO_TARGETS
from repro.calibrate.verify import verify_scenarios
from repro.experiments.scenario import run_scenario_sweep
from repro.results import store_from_env

#: Seeds aggregated by the shared verification run.
SEEDS = (0, 1, 2)

_REPORT: Optional[dict[str, Any]] = None


def scenario_target_report() -> dict[str, Any]:
    """The shared margin report (memoized; store-aware via the env var)."""
    global _REPORT
    if _REPORT is None:
        _REPORT = verify_scenarios(
            duration_s=BENCH_DURATION_S,
            repetitions=len(SEEDS),
            store=store_from_env(),
        )
    return _REPORT


def _target_row(report: dict[str, Any], name: str) -> dict[str, Any]:
    return next(row for row in report["results"] if row["name"] == name)


def test_bench_scenario_pack_smoke(benchmark):
    """The paper-baseline pack runs end to end and produces sane metrics."""
    table = run_once(
        benchmark,
        run_scenario_sweep,
        tag="paper-baseline",
        duration_s=BENCH_DURATION_S,
        repetitions=1,
        store=store_from_env(),
    )
    print("\n" + table.to_text())
    assert len(table.rows) >= 4
    by_name = {row[0]: dict(zip(table.columns[1:], row[1:])) for row in table.rows}
    for name, metrics in by_name.items():
        assert metrics["median_up_mbps"] > 0.0, name
        assert metrics["median_down_mbps"] > 0.0, name
    # The shaped uplink scenario is actually capacity-limited.
    assert by_name["paper/static-0.5up-zoom"]["median_up_mbps"] < 0.55
    record_bench_result(
        "scenarios",
        "paper_baseline_pack",
        duration_s=BENCH_DURATION_S,
        rows={name: metrics for name, metrics in by_name.items()},
    )


def test_bench_bursty_loss_beats_iid_at_equal_mean(benchmark):
    """Gilbert-Elliott bursts freeze the video; i.i.d. at the same mean does not."""
    report = run_once(benchmark, scenario_target_report)
    gap = _target_row(report, "bursty-vs-iid-freeze-gap")
    floor = _target_row(report, "bursty-freeze-floor")
    print(f"\nfreeze-gap margin={gap['margin']:+.4f} floor margin={floor['margin']:+.4f}")
    # FEC/recovery absorbs isolated losses but not ~24-packet bursts; the
    # 8% mean is identical on both sides, and the committed threshold keeps
    # a recorded gap, not just a sign.
    assert gap["margin"] > 0.0, gap
    assert floor["margin"] > 0.0, floor
    record_bench_result(
        "scenarios",
        "bursty_vs_iid_loss",
        duration_s=BENCH_DURATION_S,
        freeze_gap=gap["value"],
        freeze_gap_margin=gap["margin"],
        bursty_freeze=floor["value"],
    )


def test_bench_lte_trace_forces_more_rate_switches(benchmark):
    """A trace-driven LTE uplink keeps the controller re-deciding; static shaping does not."""
    report = run_once(benchmark, scenario_target_report)
    row = _target_row(report, "lte-vs-static-rate-switches")
    print(f"\nrate-switch gap={row['value']:.2f} (threshold {row['threshold']}) "
          f"margin={row['margin']:+.4f}")
    assert row["margin"] > 0.0, row
    record_bench_result(
        "scenarios",
        "lte_vs_static_switches",
        duration_s=BENCH_DURATION_S,
        switch_gap=row["value"],
        switch_gap_margin=row["margin"],
    )


def test_bench_codel_tames_the_standing_queue(benchmark):
    """CoDel cuts the shaped link's queueing delay without starving throughput."""
    report = run_once(benchmark, scenario_target_report)
    delay = _target_row(report, "codel-vs-droptail-queue-delay")
    ratio = _target_row(report, "codel-throughput-ratio")
    print(f"\nqueue-delay gap={delay['value']:.3f}s margin={delay['margin']:+.4f} | "
          f"throughput ratio={ratio['value']:.3f} margin={ratio['margin']:+.4f}")
    assert delay["margin"] > 0.0, delay
    assert ratio["margin"] > 0.0, ratio
    record_bench_result(
        "scenarios",
        "codel_vs_droptail",
        duration_s=BENCH_DURATION_S,
        queue_delay_gap_s=delay["value"],
        queue_delay_margin=delay["margin"],
        throughput_ratio=ratio["value"],
        throughput_ratio_margin=ratio["margin"],
    )


def test_bench_all_scenario_targets_satisfied(benchmark):
    """Every committed scenario target scores a positive margin."""
    report = run_once(benchmark, scenario_target_report)
    failing = [row for row in report["results"] if not row["satisfied"]]
    print("\n" + "\n".join(
        f"  [{'ok  ' if row['satisfied'] else 'FAIL'}] {row['name']:34s} "
        f"value={row['value']:8.4f} {row['op']} {row['threshold']:<8g} "
        f"margin={row['margin']:+.4f}"
        for row in report["results"]
    ))
    assert report["satisfied"], failing
    assert len(report["results"]) == len(SCENARIO_TARGETS)
    record_bench_result(
        "scenarios",
        "scenario_targets",
        duration_s=BENCH_DURATION_S,
        satisfied=report["satisfied"],
        margins=report["margins"],
    )
