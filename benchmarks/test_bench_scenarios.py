"""Directional-sanity benchmarks for the netem scenario library.

Unlike the figure benchmarks (which pin the paper's numbers), these pin the
*physics* the new subsystem is supposed to add:

* burst loss at equal mean loss breaks video continuity where i.i.d. loss
  is absorbed by FEC/recovery,
* a trace-driven LTE uplink forces the rate controller to keep re-deciding
  where static shaping at the same mean capacity does not,
* CoDel holds the standing queue near its target where drop-tail
  bufferbloats, at comparable throughput.

Every comparison aggregates over three seeds so the assertions hold at both
``REPRO_BENCH_DURATION=10`` (the CI scenario-smoke job) and the default 45.
Results are emitted to ``BENCH_scenarios.json`` for the CI artifact.
"""

from __future__ import annotations

from bench_io import record_bench_result
from conftest import BENCH_DURATION_S, run_once

from repro.experiments.scenario import run_scenario_sweep
from repro.netem.scenarios import ScenarioSpec, get_scenario, run_scenario

#: Seeds aggregated by every A-vs-B comparison.
SEEDS = (0, 1, 2)


def _metric_sum(name: str, metric: str, duration_s: float) -> float:
    return sum(
        run_scenario(get_scenario(name), seed=seed, duration_s=duration_s).metrics()[metric]
        for seed in SEEDS
    )


def test_bench_scenario_pack_smoke(benchmark):
    """The paper-baseline pack runs end to end and produces sane metrics."""
    table = run_once(
        benchmark,
        run_scenario_sweep,
        tag="paper-baseline",
        duration_s=BENCH_DURATION_S,
        repetitions=1,
    )
    print("\n" + table.to_text())
    assert len(table.rows) >= 4
    by_name = {row[0]: dict(zip(table.columns[1:], row[1:])) for row in table.rows}
    for name, metrics in by_name.items():
        assert metrics["median_up_mbps"] > 0.0, name
        assert metrics["median_down_mbps"] > 0.0, name
    # The shaped uplink scenario is actually capacity-limited.
    assert by_name["paper/static-0.5up-zoom"]["median_up_mbps"] < 0.55
    record_bench_result(
        "scenarios",
        "paper_baseline_pack",
        duration_s=BENCH_DURATION_S,
        rows={name: metrics for name, metrics in by_name.items()},
    )


def test_bench_bursty_loss_beats_iid_at_equal_mean(benchmark):
    """Gilbert-Elliott bursts freeze the video; i.i.d. at the same mean does not."""
    def compare():
        bursty = _metric_sum("bursty-downlink-zoom", "freeze_ratio", BENCH_DURATION_S)
        iid = _metric_sum("iid-downlink-zoom", "freeze_ratio", BENCH_DURATION_S)
        return bursty, iid

    bursty_freeze, iid_freeze = run_once(benchmark, compare)
    print(f"\nfreeze ratio over {len(SEEDS)} seeds: bursty={bursty_freeze:.4f} iid={iid_freeze:.4f}")
    # FEC/recovery absorbs isolated losses but not ~24-packet bursts; the
    # 8% mean is identical on both sides.
    assert bursty_freeze > iid_freeze
    assert bursty_freeze > 0.0
    record_bench_result(
        "scenarios",
        "bursty_vs_iid_loss",
        duration_s=BENCH_DURATION_S,
        bursty_freeze_sum=bursty_freeze,
        iid_freeze_sum=iid_freeze,
    )


def test_bench_lte_trace_forces_more_rate_switches(benchmark):
    """A trace-driven LTE uplink keeps the controller re-deciding; static shaping does not."""
    static_control = ScenarioSpec(
        name="bench/static-2.5up-zoom",
        description="Static 2.5 Mbps uplink (control matching the LTE trace mean)",
        vca="zoom",
        direction="up",
        profile=("constant", {"mbps": 2.5}),
    )

    def compare():
        lte = _metric_sum("lte-uplink-zoom", "rate_switches", BENCH_DURATION_S)
        static = sum(
            run_scenario(static_control, seed=seed, duration_s=BENCH_DURATION_S)
            .metrics()["rate_switches"]
            for seed in SEEDS
        )
        return lte, static

    lte_switches, static_switches = run_once(benchmark, compare)
    print(f"\nrate switches over {len(SEEDS)} seeds: lte={lte_switches:.0f} static={static_switches:.0f}")
    assert lte_switches > static_switches
    record_bench_result(
        "scenarios",
        "lte_vs_static_switches",
        duration_s=BENCH_DURATION_S,
        lte_switch_sum=lte_switches,
        static_switch_sum=static_switches,
    )


def test_bench_codel_tames_the_standing_queue(benchmark):
    """CoDel cuts the shaped link's queueing delay without starving throughput."""
    def compare():
        results = {}
        for name in ("codel-downlink-zoom", "droptail-downlink-zoom"):
            delay = throughput = 0.0
            for seed in SEEDS:
                metrics = run_scenario(
                    get_scenario(name), seed=seed, duration_s=BENCH_DURATION_S
                ).metrics()
                delay += metrics["mean_queue_delay_s"]
                throughput += metrics["median_down_mbps"]
            results[name] = (delay, throughput)
        return results

    results = run_once(benchmark, compare)
    codel_delay, codel_tput = results["codel-downlink-zoom"]
    droptail_delay, droptail_tput = results["droptail-downlink-zoom"]
    print(
        f"\nover {len(SEEDS)} seeds: codel delay={codel_delay:.3f}s tput={codel_tput:.2f} | "
        f"droptail delay={droptail_delay:.3f}s tput={droptail_tput:.2f}"
    )
    assert codel_delay < droptail_delay
    assert codel_tput > 0.8 * droptail_tput
    record_bench_result(
        "scenarios",
        "codel_vs_droptail",
        duration_s=BENCH_DURATION_S,
        codel_delay_sum=codel_delay,
        droptail_delay_sum=droptail_delay,
        codel_throughput_sum=codel_tput,
        droptail_throughput_sum=droptail_tput,
    )
