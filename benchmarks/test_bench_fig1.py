"""Benchmarks regenerating Figure 1 (utilization under static shaping)."""

from conftest import BENCH_DURATION_S, BENCH_LEVELS_MBPS, BENCH_REPETITIONS, run_once

from repro.core.results import format_figure
from repro.experiments.static import run_capacity_sweep, run_platform_comparison


def test_bench_fig1a_uplink_sweep(benchmark):
    series = run_once(
        benchmark,
        run_capacity_sweep,
        direction="up",
        levels_mbps=BENCH_LEVELS_MBPS,
        duration_s=BENCH_DURATION_S,
        repetitions=BENCH_REPETITIONS,
    )
    print("\n" + format_figure("fig1a (median uplink bitrate vs capacity)", series))
    for vca, figure in series.items():
        # Constrained points use most of the link; bitrate grows with capacity.
        assert figure.y[0] <= figure.y[-1] + 0.1


def test_bench_fig1b_downlink_sweep(benchmark):
    series = run_once(
        benchmark,
        run_capacity_sweep,
        direction="down",
        levels_mbps=BENCH_LEVELS_MBPS,
        duration_s=BENCH_DURATION_S,
        repetitions=BENCH_REPETITIONS,
    )
    print("\n" + format_figure("fig1b (median downlink bitrate vs capacity)", series))
    # Meet's downlink collapses to the low simulcast copy below ~0.8 Mbps.
    assert series["meet"].y[1] < 0.45


def test_bench_fig1c_platform_comparison(benchmark):
    series = run_once(
        benchmark,
        run_platform_comparison,
        direction="up",
        levels_mbps=(0.5, 1.0, 2.0),
        duration_s=BENCH_DURATION_S,
        repetitions=BENCH_REPETITIONS,
    )
    print("\n" + format_figure("fig1c (native vs Chrome clients, uplink)", series))
    # Teams-Chrome uses less of a 1 Mbps uplink than Teams native.
    teams = dict(zip(series["teams"].x, series["teams"].y))
    chrome = dict(zip(series["teams-chrome"].x, series["teams-chrome"].y))
    assert chrome[1.0] < teams[1.0]
