"""Benchmarks regenerating Figure 15 (participant count and viewing mode)."""

from conftest import BENCH_REPETITIONS, run_once

from repro.core.results import format_figure
from repro.experiments.modality import run_participant_sweep

DURATION_S = 40.0


def test_bench_fig15ab_gallery_sweep(benchmark):
    result = run_once(
        benchmark,
        run_participant_sweep,
        mode="gallery",
        participant_counts=(2, 4, 5, 7),
        duration_s=DURATION_S,
        repetitions=BENCH_REPETITIONS,
    )
    print("\n" + format_figure("fig15a (downlink vs participants, gallery)", result["downlink"]))
    print("\n" + format_figure("fig15b (uplink vs participants, gallery)", result["uplink"]))
    zoom_up = dict(zip(result["uplink"]["zoom"].x, result["uplink"]["zoom"].y))
    meet_up = dict(zip(result["uplink"]["meet"].x, result["uplink"]["meet"].y))
    teams_up = dict(zip(result["uplink"]["teams"].x, result["uplink"]["teams"].y))
    # Zoom's uplink drops at five participants; Meet's at seven; Teams stays flat.
    assert zoom_up[5] < 0.8 * zoom_up[4]
    assert meet_up[7] < 0.6 * meet_up[5]
    assert teams_up[7] > 0.6 * teams_up[2]


def test_bench_fig15c_speaker_sweep(benchmark):
    result = run_once(
        benchmark,
        run_participant_sweep,
        mode="speaker",
        participant_counts=(3, 8),
        duration_s=DURATION_S,
        repetitions=BENCH_REPETITIONS,
    )
    print("\n" + format_figure("fig15c (uplink vs participants, pinned speaker)", result["uplink"]))
    teams = result["uplink"]["teams"]
    zoom = result["uplink"]["zoom"]
    # Teams' uplink grows with the roster when pinned; Zoom's stays near 1 Mbps.
    assert teams.y[-1] > teams.y[0]
    assert zoom.y[-1] < 1.3
