"""Benchmarks regenerating Figure 5 (downlink disruptions)."""

from conftest import BENCH_REPETITIONS, run_once

from repro.core.results import format_figure
from repro.experiments.disruption import run_disruption_timeseries, run_ttr_sweep

DURATION_S = 180.0


def test_bench_fig5a_downlink_disruption_trace(benchmark):
    series = run_once(
        benchmark,
        run_disruption_timeseries,
        direction="down",
        drop_to_mbps=0.25,
        duration_s=DURATION_S,
        repetitions=BENCH_REPETITIONS,
    )
    print("\n" + format_figure("fig5a (downstream bitrate around a 0.25 Mbps downlink drop)", series))


def test_bench_fig5b_downlink_ttr(benchmark):
    series = run_once(
        benchmark,
        run_ttr_sweep,
        direction="down",
        levels_mbps=(0.25, 1.0),
        duration_s=DURATION_S,
        repetitions=BENCH_REPETITIONS,
    )
    print("\n" + format_figure("fig5b (time to recovery vs downlink drop level)", series))
    # Meet recovers from downlink drops faster than Teams (server-side copy
    # switching vs sender-side probing), Figure 5b's headline ordering.
    assert series["meet"].y[0] <= series["teams"].y[0] + 5.0
