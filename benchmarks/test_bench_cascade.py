"""Benchmarks of the cascaded SFU subsystem (composable nodes + trunks).

Two gates, both physics the single-server scenario library cannot express:

* The cascade scenario pack runs end to end through the campaign driver and
  reports per-region freeze ratios and trunk utilisation.
* The once-per-trunk property of the per-hop dispatch plans: a sender's
  packet train crosses a trunk **once** no matter how many receivers sit
  behind it.  A naive design would replicate the train per downstream
  subscriber, so the trunk's carried bytes would scale with the far-region
  population; the gate compares the measured trunk bytes against that naive
  per-subscriber replica estimate.

Results are emitted to ``BENCH_cascade.json`` for the CI artifact.
"""

from __future__ import annotations

from bench_io import record_bench_result
from conftest import BENCH_DURATION_S, run_once

from repro.core.capture import PacketCapture
from repro.experiments.cascade import run_cascade_sweep
from repro.net.simulator import Simulator
from repro.net.topology import build_cascade_topology
from repro.results import store_from_env
from repro.vca import Call, CallConfig
from repro.vca.sfu import CascadePlan, CascadeRegion


def test_bench_cascade_pack_smoke(benchmark):
    """The cascade pack runs end to end and reports per-region metrics."""
    table = run_once(
        benchmark,
        run_cascade_sweep,
        duration_s=BENCH_DURATION_S,
        repetitions=1,
        store=store_from_env(),
    )
    print("\n" + table.to_text())
    assert len(table.rows) >= 4
    by_name = {row[0]: dict(zip(table.columns[1:], row[1:])) for row in table.rows}
    for name, metrics in by_name.items():
        assert metrics["median_up_mbps"] > 0.0, name
        assert metrics["trunk_mean_mbps"] > 0.0, name
        assert metrics["cascade_freeze_ratio_R0"] >= 0.0, name
    # The bursty-lossy forward trunk hurts the far region, not region 0.
    lossy = by_name["cascade/lossy-trunk-far-freeze-zoom"]
    assert lossy["cascade_freeze_gap"] > 0.0
    record_bench_result(
        "cascade",
        "cascade_pack",
        duration_s=BENCH_DURATION_S,
        rows=by_name,
    )


def _trunk_fanout_bytes(far_clients: int, duration_s: float):
    """Run a 2-region star cascade and measure the R0->R1 trunk traffic.

    Region 0 holds only the sender of interest (``C1``); ``far_clients``
    receivers sit behind the single trunk.  Returns ``(trunk_bytes,
    per_receiver_bytes)``: the bytes of C1's media actually carried by the
    trunk, and the bytes of C1's stream the far node forwarded to each of
    its local receivers.
    """
    sim = Simulator(seed=7)
    far = tuple(f"C{i + 2}" for i in range(far_clients))
    plan = CascadePlan(
        regions=(
            CascadeRegion(node="R0", clients=("C1",)),
            CascadeRegion(node="R1", clients=far),
        ),
        trunks=(("R0", "R1"),),
    )
    topo = build_cascade_topology(sim, plan)
    capture = PacketCapture(sim)
    capture.attach(topo.host("R1"))
    call = Call(
        sim,
        [topo.host(name) for name in ("C1", *far)],
        topo.host("R0"),
        CallConfig(vca="zoom", seed=7, collect_stats=False),
        cascade=plan,
        cascade_hosts={"R0": topo.host("R0"), "R1": topo.host("R1")},
    )
    call.start()
    sim.run(until=duration_s)
    call.stop()
    sim.run(until=duration_s + 2.0)

    trunk_bytes = 0
    per_receiver = {name: 0 for name in far}
    for (host, direction, flow), series in capture._series.items():
        if direction == "rx" and ":trunk:R0>R1:C1" in flow:
            trunk_bytes += series.total_bytes()
        if direction == "tx" and ":down:C1>" in flow:
            receiver = flow.split(":down:C1>", 1)[1].split(":", 1)[0]
            if receiver in per_receiver:
                per_receiver[receiver] += series.total_bytes()
    return trunk_bytes, per_receiver


def test_bench_trunk_carries_each_train_once(benchmark):
    """Trunk fan-out is once per trunk, not once per downstream receiver."""
    duration = min(BENCH_DURATION_S, 20.0)
    trunk_bytes, per_receiver = run_once(
        benchmark, _trunk_fanout_bytes, far_clients=3, duration_s=duration
    )
    assert trunk_bytes > 0
    assert all(v > 0 for v in per_receiver.values())
    # A naive design replicates C1's train per subscriber on the trunk leg;
    # the cached per-hop plans ship one copy and let the far node fan out
    # locally (regenerating FEC there), so the trunk carries at most about
    # one receiver's worth of C1's stream -- far below the replica estimate.
    naive_replica = sum(per_receiver.values())
    single_copy = max(per_receiver.values())
    print(
        f"\ntrunk C1 bytes={trunk_bytes} single-copy={single_copy} "
        f"naive per-subscriber replica={naive_replica} "
        f"ratio={trunk_bytes / naive_replica:.3f}"
    )
    assert trunk_bytes < 0.6 * naive_replica
    assert trunk_bytes <= 1.35 * single_copy
    record_bench_result(
        "cascade",
        "trunk_once_per_train",
        duration_s=duration,
        far_clients=3,
        trunk_bytes=trunk_bytes,
        naive_replica_bytes=naive_replica,
        single_copy_bytes=single_copy,
    )


def test_bench_trunk_bytes_flat_in_subscriber_count(benchmark):
    """Adding far-region receivers must not inflate the trunk's carried bytes."""
    duration = min(BENCH_DURATION_S, 20.0)
    one, _ = _trunk_fanout_bytes(far_clients=1, duration_s=duration)
    three, _ = run_once(
        benchmark, _trunk_fanout_bytes, far_clients=3, duration_s=duration
    )
    print(f"\ntrunk C1 bytes: 1 far receiver={one} 3 far receivers={three}")
    assert one > 0 and three > 0
    # Per-receiver replication would roughly triple the carried bytes; the
    # union-of-demands can only grow the train by whatever extra layers the
    # larger gallery demands, which is far below another full copy.
    assert three < 1.6 * one
    record_bench_result(
        "cascade",
        "trunk_bytes_vs_subscribers",
        duration_s=duration,
        bytes_one_receiver=one,
        bytes_three_receivers=three,
        ratio=three / one,
    )
