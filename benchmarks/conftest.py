"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a reduced
scale (shorter calls, one repetition, a coarser parameter grid) so the whole
harness completes in minutes; the experiment drivers accept the full
paper-scale parameters if a user wants the complete campaign (see
EXPERIMENTS.md).

The scale can be nudged with the ``REPRO_BENCH_DURATION`` environment
variable (seconds per call; default 45).
"""

from __future__ import annotations

import os

import pytest

#: Call duration (seconds) used by the reduced benchmark campaign.
BENCH_DURATION_S = float(os.environ.get("REPRO_BENCH_DURATION", "45"))

#: Repetitions per condition in the reduced campaign.
BENCH_REPETITIONS = int(os.environ.get("REPRO_BENCH_REPETITIONS", "1"))

#: Reduced shaping grid used for the static sweeps.
BENCH_LEVELS_MBPS = (0.3, 0.5, 0.8, 1.0, 2.0)


@pytest.fixture
def bench_params():
    """The reduced-scale parameters shared by all figure benchmarks."""
    return {
        "duration_s": BENCH_DURATION_S,
        "repetitions": BENCH_REPETITIONS,
    }


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)
