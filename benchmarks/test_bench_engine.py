"""Engine microbenchmarks: events/sec and the packet-forwarding fast path.

Three microbenchmarks isolate the simulation engine from the VCA models:

* **pure scheduling** -- a chain of self-rescheduling callbacks, measuring
  heap push/pop plus dispatch,
* **packet forwarding** -- a paced stream over the repo's standard access
  path (host egress hop -> access link -> router -> second link -> host),
* **capture-attached forwarding** -- the same path with the emulated
  ``tcpdump`` (a per-flow byte-binning tap) on the receiving host.

Each workload runs on the production fast path *and* on a self-contained
replica of the seed engine: ``order=True`` dataclass heap entries resolved
via a generated ``__lt__``, a dataclass packet with an eagerly allocated
``meta`` dict, one closure-carrying heap event per packet per stage
(serialization, propagation, and the per-packet double-lambda egress hop the
seed topology used), and dict-of-dicts capture binning.  That replica is the
baseline the tentpole's claimed speedup is measured against; the
``events_processed`` counters provide the events/sec rates and verify the
coalesced path schedules strictly fewer heap events.
"""

from __future__ import annotations

import heapq
import itertools
import os
import time
from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from bench_io import record_bench_result

from repro.core.capture import PacketCapture
from repro.net.link import Link
from repro.net.node import Host
from repro.net.packet import Packet
from repro.net.router import DelayPipe, Router
from repro.net.simulator import Simulator

# Forwarding workload: 80% utilization of a 10 Mbps link with 1000 B packets.
N_PACKETS = 20_000
PACKET_BYTES = 1000
SEND_INTERVAL_S = 0.001
LINK_RATE_BPS = 10e6
EGRESS_DELAY_S = 0.001
#: The emulated calls multiplex several RTP/RTCP/FEC flows per host; the
#: capture workload cycles through a comparable number of flow ids.
FLOW_IDS = tuple(f"bench-flow-{i}" for i in range(8))

# Pure-scheduling workload.
N_EVENTS = 200_000

#: Required speedups over the seed-engine replica.  Scaled down by
#: ``REPRO_ENGINE_BENCH_MARGIN`` (default 1.0) so shared CI runners, whose
#: wall clocks are noisy, can keep the regression guard without flaking.
_MARGIN = float(os.environ.get("REPRO_ENGINE_BENCH_MARGIN", "1.0"))
MIN_FORWARDING_SPEEDUP = 3.0 * _MARGIN
MIN_SCHEDULING_SPEEDUP = 2.0 * _MARGIN
MIN_CAPTURE_SPEEDUP = 2.5 * _MARGIN


# --------------------------------------------------------------------------
# Seed-engine replica: the exact event/packet/link machinery of the seed.
# --------------------------------------------------------------------------
@dataclass(order=True)
class _SeedEvent:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class _SeedSimulator:
    """The seed's simulator: dataclass heap entries compared via ``__lt__``."""

    def __init__(self) -> None:
        self._queue: list[_SeedEvent] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._event_count = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def events_processed(self) -> int:
        return self._event_count

    def schedule(self, delay: float, callback: Callable[[], None]) -> _SeedEvent:
        return self.schedule_at(self._now + max(delay, 0.0), callback)

    def schedule_at(self, when: float, callback: Callable[[], None]) -> _SeedEvent:
        if when < self._now:
            when = self._now
        event = _SeedEvent(time=when, seq=next(self._counter), callback=callback)
        heapq.heappush(self._queue, event)
        return event

    def run(self, until: float) -> None:
        while self._queue and self._queue[0].time <= until:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._event_count += 1
            event.callback()
        self._now = max(self._now, until)


_seed_packet_ids = itertools.count()


@dataclass
class _SeedPacket:
    """The seed's packet: a plain dataclass with an eager ``meta`` dict."""

    size_bytes: int
    flow_id: str
    src: str
    dst: str
    kind: str = "rtp_video"
    seq: int = 0
    created_at: float = 0.0
    meta: dict[str, Any] = field(default_factory=dict)
    packet_id: int = field(default_factory=lambda: next(_seed_packet_ids))
    enqueued_at: Optional[float] = None
    queueing_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("packet size must be positive")

    @property
    def size_bits(self) -> int:
        return self.size_bytes * 8


@dataclass
class _SeedLinkStats:
    packets_sent: int = 0
    packets_dropped: int = 0
    packets_lost_random: int = 0
    bytes_sent: int = 0
    bytes_dropped: int = 0


class _SeedLink:
    """The seed's link: one heap event (plus a closure) per packet per stage."""

    def __init__(self, sim, name: str, rate_bps: float, delay_s: float = 0.005,
                 queue_bytes: int = 64_000, loss_rate: float = 0.0) -> None:
        self.sim = sim
        self.name = name
        self._rate_bps = float(rate_bps)
        self.delay_s = float(delay_s)
        self.queue_bytes = queue_bytes
        self.loss_rate = loss_rate
        self.stats = _SeedLinkStats()
        self._queue = deque()
        self._queued_bytes = 0
        self._busy = False
        self._sink: Optional[Callable] = None

    def connect(self, sink: Callable) -> None:
        self._sink = sink

    def send(self, packet) -> None:
        if self._sink is None:
            raise RuntimeError(f"link {self.name!r} has no sink connected")
        if self._queued_bytes + packet.size_bytes > self.queue_bytes:
            self.stats.packets_dropped += 1
            self.stats.bytes_dropped += packet.size_bytes
            return
        packet.enqueued_at = self.sim.now
        self._queue.append(packet)
        self._queued_bytes += packet.size_bytes
        if not self._busy:
            self._serve_next()

    def _serve_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        packet = self._queue.popleft()
        self._queued_bytes -= packet.size_bytes
        if packet.enqueued_at is not None:
            packet.queueing_delay += self.sim.now - packet.enqueued_at
        serialization = packet.size_bits / self._rate_bps
        self.sim.schedule(serialization, lambda p=packet: self._transmit_done(p))

    def _transmit_done(self, packet) -> None:
        self.stats.packets_sent += 1
        self.stats.bytes_sent += packet.size_bytes
        if self.loss_rate > 0.0:
            self.stats.packets_lost_random += 1
        else:
            sink = self._sink
            assert sink is not None
            self.sim.schedule(self.delay_s, lambda p=packet: sink(p))
        self._serve_next()


class _SeedHost:
    """The seed's host: un-slotted, unconditional tap fan-out."""

    def __init__(self, sim, name: str) -> None:
        self.sim = sim
        self.name = name
        self._egress = None
        self._flow_handlers: dict[str, Callable] = {}
        self._default_handler: Optional[Callable] = None
        self.bytes_sent = 0
        self.bytes_received = 0
        self.packets_sent = 0
        self.packets_received = 0
        self.taps: list[Callable] = []

    def set_egress(self, egress) -> None:
        self._egress = egress

    def set_default_handler(self, handler) -> None:
        self._default_handler = handler

    def send(self, packet) -> None:
        packet.src = self.name
        if packet.created_at == 0.0:
            packet.created_at = self.sim.now
        self.bytes_sent += packet.size_bytes
        self.packets_sent += 1
        for tap in self.taps:
            tap("tx", packet)
        self._egress(packet)

    def receive(self, packet) -> None:
        self.bytes_received += packet.size_bytes
        self.packets_received += 1
        for tap in self.taps:
            tap("rx", packet)
        handler = self._flow_handlers.get(packet.flow_id, self._default_handler)
        if handler is not None:
            handler(packet)


class _SeedRouter:
    """The seed's router, link routes only (delay routes are not on this path)."""

    def __init__(self, sim, name: str) -> None:
        self.sim = sim
        self.name = name
        self._routes: dict[str, Any] = {}
        self.packets_forwarded = 0

    def add_link_route(self, dst: str, link) -> None:
        self._routes[dst] = link

    def receive(self, packet) -> None:
        self.packets_forwarded += 1
        self._routes[packet.dst].send(packet)


class _SeedCapture:
    """The seed's capture layer: dict-of-dicts byte binning per flow."""

    def __init__(self, sim, bin_width_s: float = 1.0) -> None:
        self.sim = sim
        self.bin_width_s = bin_width_s
        self.kinds = None
        self._series: dict[tuple[str, str, str], dict[int, int]] = {}

    def attach(self, host) -> None:
        host.taps.append(lambda direction, packet, name=host.name: self._record(name, direction, packet))

    def _record(self, host_name: str, direction: str, packet) -> None:
        if self.kinds is not None and packet.kind not in self.kinds:
            return
        key = (host_name, direction, packet.flow_id)
        bins = self._series.get(key)
        if bins is None:
            bins = self._series[key] = defaultdict(int)
        bins[int(self.sim.now / self.bin_width_s)] += packet.size_bytes


# --------------------------------------------------------------------------
# Workloads
# --------------------------------------------------------------------------
def _run_scheduling(sim, schedule) -> tuple[float, int]:
    """Chain of self-rescheduling callbacks; returns (wall_s, events)."""
    remaining = [N_EVENTS]

    def tick() -> None:
        remaining[0] -= 1
        if remaining[0] > 0:
            schedule(0.001, tick)

    schedule(0.001, tick)
    start = time.perf_counter()
    sim.run(until=N_EVENTS)
    return time.perf_counter() - start, sim.events_processed


def _run_forwarding(sim, sender, packet_cls, schedule) -> tuple[float, int]:
    """Pace N_PACKETS through the assembled path; returns (wall_s, events)."""
    sent = [0]

    def send_next() -> None:
        index = sent[0]
        sent[0] = index + 1
        sender.send(
            packet_cls(
                size_bytes=PACKET_BYTES,
                flow_id=FLOW_IDS[index & 7],
                src="src",
                dst="dst",
                seq=index,
            )
        )
        if sent[0] < N_PACKETS:
            schedule(SEND_INTERVAL_S, send_next)

    schedule(SEND_INTERVAL_S, send_next)
    start = time.perf_counter()
    sim.run(until=N_PACKETS * SEND_INTERVAL_S + 10.0)
    return time.perf_counter() - start, sim.events_processed


def _seed_case(capture: bool) -> tuple[float, int, int]:
    """Seed path: double-lambda egress hop -> link A -> router -> link B -> host."""
    sim = _SeedSimulator()
    sender = _SeedHost(sim, "src")
    receiver = _SeedHost(sim, "dst")
    router = _SeedRouter(sim, "r")
    link_a = _SeedLink(sim, "a", LINK_RATE_BPS)
    link_b = _SeedLink(sim, "b", LINK_RATE_BPS)
    # The seed topology's per-packet egress hop: two closures + one event.
    sender.set_egress(
        lambda p, _link=link_a: sim.schedule(EGRESS_DELAY_S, lambda pkt=p: _link.send(pkt))
    )
    link_a.connect(router.receive)
    router.add_link_route("dst", link_b)
    link_b.connect(receiver.receive)
    received = [0]
    receiver.set_default_handler(lambda p: received.__setitem__(0, received[0] + 1))
    if capture:
        tap = _SeedCapture(sim)
        tap.attach(sender)
        tap.attach(receiver)
    wall, events = _run_forwarding(sim, sender, _SeedPacket, sim.schedule)
    return wall, events, received[0]


def _fast_case(capture: bool, legacy_links: bool = False) -> tuple[float, int, int]:
    """Production path: DelayPipe egress -> link A -> router -> link B -> host."""
    sim = Simulator()
    sender = Host(sim, "src")
    receiver = Host(sim, "dst")
    router = Router(sim, "r")
    link_a = Link(sim, "a", LINK_RATE_BPS, legacy=legacy_links)
    link_b = Link(sim, "b", LINK_RATE_BPS, legacy=legacy_links)
    sender.set_egress(DelayPipe(sim, link_a.send, EGRESS_DELAY_S).send)
    link_a.connect(router.receive)
    router.add_link_route("dst", link_b)
    link_b.connect(receiver.receive)
    received = [0]
    receiver.set_default_handler(lambda p: received.__setitem__(0, received[0] + 1))
    if capture:
        tap = PacketCapture(sim)
        tap.attach(sender)
        tap.attach(receiver)
    wall, events = _run_forwarding(sim, sender, Packet, sim.call_in)
    return wall, events, received[0]


# --------------------------------------------------------------------------
# Benchmarks
# --------------------------------------------------------------------------
ROUNDS = 3


def _best_of(case: Callable[[], tuple], rounds: int = ROUNDS) -> tuple:
    """Run ``case`` ``rounds`` times, return the round with the best wall time.

    Each round builds a fresh simulator/topology, so the minimum discards
    allocator and cache warm-up noise without ever mixing state across runs.
    """
    results = [case() for _ in range(rounds)]
    return min(results, key=lambda r: r[0])


def test_bench_engine_pure_scheduling():
    def seed_case() -> tuple[float, int]:
        sim = _SeedSimulator()
        return _run_scheduling(sim, sim.schedule)

    def fast_case() -> tuple[float, int]:
        sim = Simulator()
        return _run_scheduling(sim, sim.call_in)

    seed_wall, seed_events = _best_of(seed_case)
    fast_wall, fast_events = _best_of(fast_case)
    assert fast_events == seed_events == N_EVENTS
    speedup = seed_wall / fast_wall
    print(
        f"\npure scheduling: seed {seed_events / seed_wall:,.0f} ev/s, "
        f"fast {fast_events / fast_wall:,.0f} ev/s, speedup {speedup:.2f}x"
    )
    record_bench_result(
        "engine",
        "test_bench_engine_pure_scheduling",
        seed_wall_s=seed_wall,
        fast_wall_s=fast_wall,
        speedup=speedup,
        events=N_EVENTS,
    )
    assert speedup >= MIN_SCHEDULING_SPEEDUP


def test_bench_engine_packet_forwarding():
    seed_wall, seed_events, seed_rx = _best_of(lambda: _seed_case(capture=False))
    fast_wall, fast_events, fast_rx = _best_of(lambda: _fast_case(capture=False))
    assert seed_rx == fast_rx == N_PACKETS
    speedup = seed_wall / fast_wall
    print(
        f"\npacket forwarding (2-link path): seed {seed_events / seed_wall:,.0f} ev/s "
        f"({N_PACKETS / seed_wall:,.0f} pkt/s), fast {fast_events / fast_wall:,.0f} ev/s "
        f"({N_PACKETS / fast_wall:,.0f} pkt/s), speedup {speedup:.2f}x"
    )
    record_bench_result(
        "engine",
        "test_bench_engine_packet_forwarding",
        seed_wall_s=seed_wall,
        fast_wall_s=fast_wall,
        speedup=speedup,
        packets=N_PACKETS,
    )
    assert speedup >= MIN_FORWARDING_SPEEDUP


def test_bench_engine_capture_forwarding():
    seed_wall, seed_events, seed_rx = _best_of(lambda: _seed_case(capture=True))
    fast_wall, fast_events, fast_rx = _best_of(lambda: _fast_case(capture=True))
    assert seed_rx == fast_rx == N_PACKETS
    speedup = seed_wall / fast_wall
    print(
        f"\ncapture-attached forwarding: seed {seed_events / seed_wall:,.0f} ev/s, "
        f"fast {fast_events / fast_wall:,.0f} ev/s, speedup {speedup:.2f}x"
    )
    record_bench_result(
        "engine",
        "test_bench_engine_capture_forwarding",
        seed_wall_s=seed_wall,
        fast_wall_s=fast_wall,
        speedup=speedup,
        packets=N_PACKETS,
    )
    assert speedup >= MIN_CAPTURE_SPEEDUP


def test_bench_engine_coalescing_reduces_heap_events():
    """Coalesced links/pipes must not schedule more heap events than per-packet."""
    legacy_wall, legacy_events, legacy_rx = _best_of(
        lambda: _fast_case(capture=False, legacy_links=True)
    )
    fast_wall, fast_events, fast_rx = _best_of(lambda: _fast_case(capture=False))
    assert legacy_rx == fast_rx == N_PACKETS
    print(
        f"\ncoalescing: per-packet link events {legacy_events:,} ({legacy_wall:.3f}s) "
        f"vs coalesced {fast_events:,} ({fast_wall:.3f}s)"
    )
    record_bench_result(
        "engine",
        "test_bench_engine_coalescing_reduces_heap_events",
        legacy_events=legacy_events,
        fast_events=fast_events,
        legacy_wall_s=legacy_wall,
        fast_wall_s=fast_wall,
    )
    # The event count is deterministic (unlike wall clock): the analytic
    # link must schedule strictly fewer heap events than per-packet mode.
    assert fast_events < legacy_events
