"""Benchmark regenerating Figure 11 (Teams vs Zoom at 1 Mbps)."""

from conftest import run_once

from repro.core.results import format_figure
from repro.experiments.competition import run_pair_timeseries


def test_bench_fig11_teams_vs_zoom(benchmark):
    result = run_once(
        benchmark,
        run_pair_timeseries,
        incumbent="teams",
        competitor="zoom",
        capacity_mbps=1.0,
        competitor_duration_s=60.0,
    )
    for direction, series in result.items():
        print("\n" + format_figure(f"fig11 ({direction}link)", series))

    def mean(figure, lo, hi):
        values = [y for x, y in zip(figure.x, figure.y) if lo <= x <= hi]
        return sum(values) / max(len(values), 1)

    # On the downlink the incumbent Teams call backs off to Zoom (Figure 11b).
    teams_down = mean(result["down"]["incumbent"], 45, 90)
    zoom_down = mean(result["down"]["competitor"], 45, 90)
    assert teams_down < zoom_down + 0.25
