"""Benchmarks regenerating Figures 8 and 10 (VCA vs VCA link sharing)."""

from conftest import BENCH_REPETITIONS, run_once

from repro.experiments.competition import run_vca_vs_vca

COMPETITOR_DURATION_S = 60.0


def test_bench_fig8_uplink_shares(benchmark):
    table = run_once(
        benchmark,
        run_vca_vs_vca,
        direction="up",
        capacity_mbps=0.5,
        repetitions=BENCH_REPETITIONS,
        competitor_duration_s=COMPETITOR_DURATION_S,
    )
    print("\n" + table.to_text())
    shares = {(row[0], row[1]): row[2] for row in table.rows}
    # Zoom is the aggressive one: as an incumbent it keeps the larger share,
    # and Meet backs off when a Zoom call joins (Figure 8a/8c).
    assert shares[("zoom", "meet")] > 0.5
    assert shares[("meet", "zoom")] < 0.5


def test_bench_fig10_downlink_shares(benchmark):
    table = run_once(
        benchmark,
        run_vca_vs_vca,
        direction="down",
        capacity_mbps=0.5,
        repetitions=BENCH_REPETITIONS,
        competitor_duration_s=COMPETITOR_DURATION_S,
    )
    print("\n" + table.to_text())
    shares = {(row[0], row[1]): row[2] for row in table.rows}
    # Teams is passive on the downlink (Figure 10b).
    assert shares[("teams", "zoom")] < 0.6
