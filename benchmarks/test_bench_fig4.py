"""Benchmarks regenerating Figure 4 (uplink disruptions)."""

from conftest import BENCH_REPETITIONS, run_once

from repro.core.results import format_figure
from repro.experiments.disruption import run_disruption_timeseries, run_ttr_sweep

DURATION_S = 180.0


def test_bench_fig4a_uplink_disruption_trace(benchmark):
    series = run_once(
        benchmark,
        run_disruption_timeseries,
        direction="up",
        drop_to_mbps=0.25,
        duration_s=DURATION_S,
        repetitions=BENCH_REPETITIONS,
    )
    print("\n" + format_figure("fig4a (upstream bitrate around a 0.25 Mbps uplink drop)", series))
    for vca, figure in series.items():
        during = [y for x, y in zip(figure.x, figure.y) if 70 <= x <= 88]
        before = [y for x, y in zip(figure.x, figure.y) if 30 <= x <= 55]
        assert sum(during) / len(during) < sum(before) / len(before)


def test_bench_fig4b_uplink_ttr(benchmark):
    series = run_once(
        benchmark,
        run_ttr_sweep,
        direction="up",
        levels_mbps=(0.25, 1.0),
        duration_s=DURATION_S,
        repetitions=BENCH_REPETITIONS,
    )
    print("\n" + format_figure("fig4b (time to recovery vs uplink drop level)", series))
    for vca, figure in series.items():
        # Severe drops take longer to recover from than mild ones.
        assert figure.y[0] >= figure.y[-1] - 5.0
