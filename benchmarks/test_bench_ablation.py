"""Ablation benchmarks for the design choices called out in DESIGN.md."""

from conftest import run_once

from repro.core.capture import PacketCapture
from repro.core.profiles import disruption_profile
from repro.net.simulator import Simulator
from repro.net.topology import build_access_topology
from repro.vca.call import Call, CallConfig


def _zoom_disruption_peak(probing_enabled: bool) -> float:
    """Average upstream rate in the post-disruption window (overshoot marker)."""
    sim = Simulator(seed=7)
    topo = build_access_topology(sim)
    topo.shape(up_profile=disruption_profile(0.25, drop_at_s=40, duration_s=20))
    capture = PacketCapture(sim)
    capture.attach(topo.host("C1"))
    call = Call(sim, [topo.host("C1"), topo.host("C2")], topo.host("S"),
                CallConfig(vca="zoom", seed=3, collect_stats=False))
    call.start()
    call.client("C1").controller.probing_enabled = probing_enabled
    sim.run(until=150.0)
    call.stop()
    times, mbps = capture.aggregate("C1", "tx").timeseries(0, 150)
    window = [y for x, y in zip(times, mbps) if 75 <= x <= 110]
    return sum(window) / max(len(window), 1)


def test_bench_ablation_zoom_fec_probing(benchmark):
    """Disabling FEC probing removes Zoom's post-disruption overshoot."""
    with_probing = run_once(benchmark, _zoom_disruption_peak, True)
    without_probing = _zoom_disruption_peak(False)
    print(f"\nZoom post-disruption peak: probing={with_probing:.2f} Mbps, "
          f"no probing={without_probing:.2f} Mbps")
    assert with_probing > without_probing


def test_bench_ablation_packet_event_cost(benchmark):
    """Cost of packet-level emulation: events processed for one short call."""

    def run_call():
        sim = Simulator(seed=1)
        topo = build_access_topology(sim)
        capture = PacketCapture(sim)
        capture.attach(topo.host("C1"))
        call = Call(sim, [topo.host("C1"), topo.host("C2")], topo.host("S"),
                    CallConfig(vca="meet", seed=1, collect_stats=False))
        call.start()
        sim.run(until=30.0)
        call.stop()
        return sim.events_processed

    events = run_once(benchmark, run_call)
    print(f"\nevents processed for a 30 s two-party Meet call: {events}")
    assert events > 10_000
